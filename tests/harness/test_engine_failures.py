"""Hardened-engine behavior: CellFailure capture, retry/quarantine,
cache corruption recovery, pool fallback, and partial-table rendering.

The deliberate failures ride through ``ExperimentSpec.fault`` — a
pool-safe way to make a worker trap (monkeypatched functions do not
survive the trip into a ProcessPoolExecutor worker).
"""

import math
import os
import pickle
import time

import pytest

from repro.errors import ConfigError
from repro.harness import engine
from repro.harness.engine import (
    STATS,
    CellFailure,
    ExperimentSpec,
    ResultCache,
    RunOutcome,
    cache_key,
    execute_captured,
    execute_many,
)

GOOD = ExperimentSpec("streams.copy", "T", 0.02)
BAD = ExperimentSpec("streams.copy", "T", 0.02, fault=("poison_line", 7))


@pytest.fixture(autouse=True)
def _reset_stats():
    STATS.reset()
    yield
    STATS.reset()


class TestCellFailureCapture:
    def test_faulting_cell_fails_others_complete(self):
        outcomes = execute_many([GOOD, BAD])
        good, bad = outcomes
        assert isinstance(good, RunOutcome) and not good.failed
        assert isinstance(bad, CellFailure) and bad.failed
        assert bad.error_type == "MachineCheckTrap"
        assert bad.trap_pc is not None
        assert bad.attempts == 2                 # retried once, still bad
        assert STATS.quarantined == 1

    def test_failure_quacks_like_an_outcome(self):
        failure = execute_captured(BAD)
        assert math.isnan(failure.cycles)
        assert math.isnan(failure.streams_mbytes_per_s)
        assert math.isnan(failure.seconds)
        assert failure.kernel == "streams.copy"
        assert failure.config_name == "T"
        assert failure.verified is False and failure.detail is None
        with pytest.raises(AttributeError):
            failure.not_a_metric

    def test_failure_pickles(self):
        failure = execute_captured(BAD)
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.error_type == failure.error_type
        assert clone.trap_pc == failure.trap_pc
        assert "Traceback" in clone.traceback_text

    def test_pool_path_captures_failures_too(self):
        outcomes = execute_many([GOOD, BAD], jobs=2)
        assert isinstance(outcomes[0], RunOutcome)
        assert isinstance(outcomes[1], CellFailure)

    def test_fault_spec_rejected_on_functional_mode(self):
        spec = ExperimentSpec("streams.copy", "T", 0.02,
                              mode="functional", fault=("poison_line", 1))
        failure = execute_captured(spec)
        assert failure.error_type == "ConfigError"

    def test_malformed_fault_spec_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            ExperimentSpec("streams.copy", fault=("poison_line",))
        with pytest.raises(ConfigError):
            ExperimentSpec("streams.copy", fault=("cosmic_ray", 1))


class TestFailuresAreNeverCached:
    def test_failed_cell_not_stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute_many([BAD], cache=cache)
        assert cache.stores == 0
        assert cache.get(cache_key(BAD)) is None

    def test_good_cell_still_stored_alongside(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute_many([GOOD, BAD], cache=cache)
        assert cache.stores == 1
        assert cache.get(cache_key(GOOD)) is not None

    def test_fault_changes_the_cache_key(self):
        assert cache_key(GOOD) != cache_key(BAD)


class TestCorruptCacheQuarantine:
    def test_corrupt_entry_is_moved_aside_and_restorable(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(GOOD)
        execute_many([GOOD], cache=cache)
        path = cache._path(key)
        path.write_bytes(b"\x80\x04 garbage")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # the slot is free again: a re-run re-stores cleanly
        out, = execute_many([GOOD], cache=cache)
        assert isinstance(out, RunOutcome)
        assert cache.get(key) is not None

    def test_wrong_type_pickle_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(GOOD)
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "an outcome"}))
        with pytest.warns(RuntimeWarning):
            assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_plain_miss_is_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("00" * 32) is None
        assert cache.corrupt == 0
        assert cache.misses == 1


class TestPoolFallback:
    def test_broken_pool_falls_back_serially_with_warning(self, monkeypatch):
        import concurrent.futures

        class ExplodingPool:
            def __init__(self, *a, **k):
                raise OSError("no forks in this sandbox")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            ExplodingPool)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            outcomes = execute_many([GOOD, ExperimentSpec(
                "streams.scale", "T", 0.02)], jobs=4)
        assert STATS.pool_fallbacks == 1
        assert all(isinstance(o, RunOutcome) for o in outcomes)


class TestPartialReportRendering:
    def test_failed_cell_renders_as_fail_marker(self):
        from repro.harness.report import render_table4
        from repro.harness.tables import Table4Row
        rows = {
            "streams.copy": Table4Row("streams.copy", 1000.0, 900.0),
            "streams.add": Table4Row("streams.add", math.nan, math.nan),
        }
        text = render_table4(rows)
        assert "FAIL" in text
        assert "1000" in text
        assert "nan" not in text

    def test_figure7_average_excludes_failures(self):
        from repro.harness.figures import Figure7Row
        from repro.harness.report import render_figure7
        rows = {
            "a": Figure7Row("a", 1.0, 4.0),
            "b": Figure7Row("b", math.nan, math.nan),
        }
        text = render_figure7(rows)
        assert "T=  4.00" in text
        assert "FAIL" in text

    @staticmethod
    def _mini_grid():
        """A 3x1 suite grid of real cells: one good, two failed."""
        from repro.harness.pool import _timeout_failure
        from repro.workloads.suite import Instance, InstanceFamily, Suite

        suite = Suite("mini", ("good", "trapped", "hung"),
                      title="partial-grid rendering")
        family = InstanceFamily("solo", (Instance("T", config="T"),))
        grid = {
            "good": {"T": execute_captured(GOOD)},
            "trapped": {"T": execute_captured(BAD)},
            "hung": {"T": _timeout_failure(
                GOOD, 2, "cell exceeded its 1s budget")},
        }
        return suite, family, grid

    def test_render_matrix_mixes_metrics_and_fail_markers(self):
        from repro.harness.report import render_matrix

        suite, family, grid = self._mini_grid()
        text = render_matrix(suite, family, grid)
        good_line = next(ln for ln in text.splitlines()
                         if ln.startswith("good"))
        assert "ok" in good_line and "FAIL" not in good_line
        trapped_line = next(ln for ln in text.splitlines()
                            if ln.startswith("trapped"))
        assert "FAIL" in trapped_line
        assert "MachineCheckTrap" in trapped_line
        assert "nan" not in text.lower()

    def test_render_matrix_marks_timeout_failures(self):
        # the pool's fault budget degrades hung cells into
        # error_type="Timeout" — the report must say so, not crash
        from repro.harness.report import render_matrix

        suite, family, grid = self._mini_grid()
        assert grid["hung"]["T"].failed
        assert grid["hung"]["T"].attempts == 2
        text = render_matrix(suite, family, grid)
        hung_line = next(ln for ln in text.splitlines()
                         if ln.startswith("hung"))
        assert "FAIL" in hung_line and "Timeout" in hung_line

    def test_render_matrix_survives_an_all_failed_grid(self):
        from repro.harness.pool import _timeout_failure
        from repro.harness.report import render_matrix

        suite, family, _ = self._mini_grid()
        grid = {name: {"T": _timeout_failure(GOOD, 1, "deadline")}
                for name in suite}
        text = render_matrix(suite, family, grid)
        assert text.count("FAIL") == len(suite)
        assert "mini" in text.splitlines()[0]


class TestCacheCrashSafety:
    """Init-time sweep of crashed-writer tmp debris (docs/HARNESS.md)."""

    def test_stale_tmp_debris_is_swept(self, tmp_path):
        slot = tmp_path / "ab"
        slot.mkdir()
        stale = slot / "abcd.tmp.12345"
        stale.write_bytes(b"half a pickle")
        old = time.time() - 2 * ResultCache.STALE_TMP_AGE_S
        os.utime(stale, (old, old))
        cache = ResultCache(tmp_path)
        assert cache.swept == 1
        assert not stale.exists()

    def test_fresh_tmp_is_left_for_its_live_writer(self, tmp_path):
        slot = tmp_path / "ab"
        slot.mkdir()
        live = slot / "abcd.tmp.12345"
        live.write_bytes(b"in flight")
        cache = ResultCache(tmp_path)
        assert cache.swept == 0
        assert live.exists()

    def test_put_leaves_no_tmp_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key(GOOD), execute_captured(GOOD))
        assert list(tmp_path.glob("*/*.tmp.*")) == []


class TestEngineStats:
    def test_stats_reset(self):
        STATS.cell_failures = 5
        STATS.reset()
        assert STATS.cell_failures == 0
        assert STATS.pool_fallbacks == 0

    def test_failures_counted(self):
        execute_captured(BAD)
        assert STATS.cell_failures == 1
