"""Harness smoke tests: runner plumbing, tables, renderers."""

import pytest

from repro.harness.runner import run, run_scalar, run_tarantula, speedup
from repro.harness import report
from repro.harness.tables import power_summary, table1, table3
from repro.workloads.registry import get


class TestRunner:
    def test_run_by_name_routes_to_vector_machine(self):
        out = run("streams.triad", "T", scale=0.05, check=True)
        assert out.config_name == "T"
        assert out.verified
        assert out.opc > 0

    def test_run_by_name_routes_to_scalar_machine(self):
        out = run("streams.triad", "EV8", scale=0.05)
        assert out.config_name == "EV8"
        assert out.cycles > 0

    def test_timing_run_verifies_output(self):
        # check=True raises if the timing co-simulation corrupted state
        run_tarantula(get("dgemm"), "T", 0.05, check=True)

    def test_speedup_helper(self):
        a = run("streams.triad", "EV8", scale=0.05)
        b = run("streams.triad", "T", scale=0.05)
        assert speedup("t", a, b) == pytest.approx(a.seconds / b.seconds)

    def test_shared_instance_reuse(self):
        inst = get("streams.copy").build(0.05)
        t = run_tarantula(get("streams.copy"), "T", instance=inst,
                          check=False)
        e = run_scalar(get("streams.copy"), "EV8", instance=inst)
        assert t.kernel == e.kernel == "streams.copy"


class TestTables:
    def test_table1_has_all_blocks(self):
        rows = table1()
        assert "Vbox" in rows and "L2 cache" in rows
        assert "Gflops/Watt" in rows

    def test_table3_matches_paper_grid(self):
        rows = table3()
        assert rows["T"]["peak_ops_per_cycle"] == 104
        assert rows["EV8"]["l2_mbytes"] == 4
        assert rows["T4"]["core_ghz"] == 4.8
        assert rows["T10"]["rambus_gbytes_per_s"] == pytest.approx(83.3)

    def test_power_summary(self):
        summary = power_summary()
        assert summary["advantage"] == pytest.approx(3.4, abs=0.25)


class TestRenderers:
    def test_render_table1(self):
        text = report.render_table1(table1())
        assert "Tarantula" in text and "Vbox" in text

    def test_render_table3(self):
        text = report.render_table3(table3())
        assert "core_ghz" in text

    def test_render_figure6_shape(self):
        from repro.harness.figures import Figure6Row
        rows = {"dgemm": Figure6Row("dgemm", 30.0, 25.0, 4.0, 1.0)}
        text = report.render_figure6(rows)
        assert "dgemm" in text and "paper" in text

    def test_render_figure7_average_line(self):
        from repro.harness.figures import Figure7Row
        rows = {"x": Figure7Row("x", 1.2, 6.0)}
        text = report.render_figure7(rows)
        assert "average" in text
