"""The grid scheduler's fault budget, proven with injected-sleep cells.

Covers the tentpole guarantees of ``repro.harness.pool``:

* serial and process backends produce identical results (the
  cross-pool differential);
* a deliberately hung cell cannot delay grid completion past its
  timeout + one retry budget (wall-clock bounded, asserted);
* the grid deadline degrades unfinished cells into
  ``CellFailure(error_type="Timeout")`` instead of hanging;
* stragglers get speculative duplicates and the first result wins;
* a mid-grid pool break preserves completed results — each completed
  cell ran exactly once, proven with run-count marker files;
* seeded backoff is deterministic and exponential.

Cell functions live at module level (picklable) and signal failure by
*returning* a failed object, mirroring ``execute_captured``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.harness.engine import STATS, CellFailure, ExperimentSpec
from repro.harness.pool import (
    PoolPolicy,
    ProcessPool,
    SerialPool,
    backoff_delay,
    run_grid,
)


@dataclass(frozen=True)
class Cell:
    """A picklable test workload: optional sleep, optional failure.

    ``marker_dir`` (when set) gets one file appended per execution, so
    tests can count how often a cell actually ran; ``sleep_once`` makes
    only the *first* execution slow (the marker doubles as the memory),
    modelling a transient hang that a retry or speculative twin beats.
    """

    name: str
    sleep_s: float = 0.0
    fail: bool = False
    marker_dir: str = ""
    sleep_once: bool = False


@dataclass
class Result:
    name: str
    pid: int
    failed = False


def run_cell(cell: Cell):
    first = True
    if cell.marker_dir:
        marker = Path(cell.marker_dir) / f"{cell.name}.{os.getpid()}.{time.monotonic_ns()}"
        first = not any(Path(cell.marker_dir).glob(f"{cell.name}.*"))
        marker.write_text(cell.name)
    if cell.sleep_s and (first or not cell.sleep_once):
        time.sleep(cell.sleep_s)
    if cell.fail:
        return CellFailure(spec=cell, error_type="Boom", message="planned",
                           traceback_text="")
    return Result(name=cell.name, pid=os.getpid())


def run_count(marker_dir: Path, name: str) -> int:
    return len(list(Path(marker_dir).glob(f"{name}.*")))


def run_cell_or_interrupt(cell: Cell):
    if cell.name == "ctrl-c":
        raise KeyboardInterrupt
    return run_cell(cell)


@pytest.fixture(autouse=True)
def _reset_stats():
    STATS.reset()
    yield
    STATS.reset()


@pytest.fixture
def process_pool():
    pool = ProcessPool(2)
    yield pool
    pool.close()


FAST = PoolPolicy(tick=0.02, backoff_base=0.01, backoff_cap=0.05)


class TestBackends:
    def test_serial_and_process_results_match(self, process_pool):
        cells = [Cell(f"c{i}") for i in range(5)]
        serial = run_grid(cells, run_cell, SerialPool(), FAST, STATS)
        parallel = run_grid(cells, run_cell, process_pool, FAST, STATS)
        assert [r.name for r in serial] == [r.name for r in parallel]
        assert all(r.pid == os.getpid() for r in serial)
        assert all(r.pid != os.getpid() for r in parallel)

    def test_empty_grid(self, process_pool):
        assert run_grid([], run_cell, process_pool, FAST, STATS) == []

    def test_serial_pool_mirrors_exceptions(self):
        fut = SerialPool().submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            fut.result()

    def test_policy_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown pool backend"):
            PoolPolicy(backend="carrier-pigeon")

    def test_policy_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            PoolPolicy(retries=-1)


class TestPolicyValidation:
    """Every budget knob rejects nonsense at construction, with a
    message that names the field and the ``None`` escape hatch —
    a serve config typo must fail the ``serve`` command at startup,
    not hang a grid at 2am."""

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_nonpositive_timeout(self, bad):
        with pytest.raises(ValueError, match="timeout must be positive"):
            PoolPolicy(timeout=bad)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_rejects_nonpositive_deadline(self, bad):
        with pytest.raises(ValueError, match="deadline must be positive"):
            PoolPolicy(deadline=bad)

    def test_rejects_nonpositive_tick(self):
        with pytest.raises(ValueError, match="tick must be positive"):
            PoolPolicy(tick=0)

    def test_messages_name_the_none_escape_hatch(self):
        with pytest.raises(ValueError, match="use None"):
            PoolPolicy(timeout=-3)
        with pytest.raises(ValueError, match="use None"):
            PoolPolicy(deadline=-3)

    def test_none_budgets_mean_unbounded(self):
        policy = PoolPolicy(timeout=None, deadline=None)
        assert policy.timeout is None and policy.deadline is None


class TestKeyboardInterrupt:
    def test_serial_grid_keeps_completed_and_degrades_the_rest(self):
        cells = [Cell("a"), Cell("ctrl-c"), Cell("z")]
        out = run_grid(cells, run_cell_or_interrupt, SerialPool(),
                       FAST, STATS)
        assert out[0].name == "a" and not out[0].failed
        for degraded in out[1:]:
            assert degraded.failed
            assert degraded.error_type == "Interrupted"
            assert "Ctrl-C" in degraded.message
        assert STATS.interrupted == 2

    def test_follow_up_grids_short_circuit_after_interrupt(self):
        run_grid([Cell("ctrl-c")], run_cell_or_interrupt, SerialPool(),
                 FAST, STATS)
        assert STATS.interrupted == 1
        # a later grid of the same command starts no new work
        t0 = time.monotonic()
        out = run_grid([Cell("slow", sleep_s=5.0)], run_cell,
                       SerialPool(), FAST, STATS)
        assert time.monotonic() - t0 < 1.0
        assert out[0].failed and out[0].error_type == "Interrupted"
        assert STATS.interrupted == 2


class TestRetries:
    def test_failure_consumes_budget_then_quarantines(self, process_pool):
        cells = [Cell("ok"), Cell("bad", fail=True)]
        out = run_grid(cells, run_cell, process_pool,
                       PoolPolicy(**{**FAST.__dict__, "retries": 1}), STATS)
        assert out[0].name == "ok"
        assert out[1].failed and out[1].attempts == 2
        assert STATS.retries == 1 and STATS.quarantined == 1

    def test_serial_retry_semantics_match(self):
        out = run_grid([Cell("bad", fail=True)], run_cell, SerialPool(),
                       PoolPolicy(**{**FAST.__dict__, "retries": 1}), STATS)
        assert out[0].failed and out[0].attempts == 2
        assert STATS.retries == 1 and STATS.quarantined == 1

    def test_zero_retries_quarantines_immediately(self):
        run_grid([Cell("bad", fail=True)], run_cell, SerialPool(),
                 PoolPolicy(**{**FAST.__dict__, "retries": 0}), STATS)
        assert STATS.retries == 0 and STATS.quarantined == 1

    def test_transient_failure_recovers(self, tmp_path, process_pool):
        # fails only while no marker exists: the retry succeeds
        cells = [Cell("flaky", marker_dir=str(tmp_path), fail=False,
                      sleep_once=True, sleep_s=0.0)]
        out = run_grid(cells, flaky_cell, process_pool,
                       PoolPolicy(**{**FAST.__dict__, "retries": 2}), STATS)
        assert not out[0].failed
        assert STATS.quarantined == 0
        assert STATS.retries >= 1


def flaky_cell(cell: Cell):
    """Fail on the first execution, succeed after (marker-backed)."""
    marker_dir = Path(cell.marker_dir)
    first = not any(marker_dir.glob(f"{cell.name}.*"))
    (marker_dir / f"{cell.name}.{os.getpid()}.{time.monotonic_ns()}") \
        .write_text(cell.name)
    if first:
        return CellFailure(spec=cell, error_type="Transient",
                           message="first try fails", traceback_text="")
    return Result(name=cell.name, pid=os.getpid())


class TestTimeouts:
    def test_hung_cell_times_out_within_budget(self, process_pool):
        """A hung cell cannot delay the grid past timeout + one retry."""
        timeout = 0.6
        cells = [Cell("hang", sleep_s=30.0), Cell("ok")]
        policy = PoolPolicy(**{**FAST.__dict__, "timeout": timeout,
                               "retries": 1})
        t0 = time.monotonic()
        out = run_grid(cells, run_cell, process_pool, policy, STATS)
        elapsed = time.monotonic() - t0
        assert out[1].name == "ok"
        assert out[0].failed and out[0].error_type == "Timeout"
        assert out[0].attempts == 2
        assert STATS.timeouts >= 2 and STATS.quarantined == 1
        # budget: 2 attempts x timeout, plus backoff + scheduler slack
        assert elapsed < 2 * timeout + 1.0

    def test_hang_once_cell_recovers_on_retry(self, tmp_path, process_pool):
        """A transiently hung cell succeeds within timeout + one retry."""
        timeout = 0.6
        cells = [Cell("slowstart", sleep_s=30.0, sleep_once=True,
                      marker_dir=str(tmp_path))]
        policy = PoolPolicy(**{**FAST.__dict__, "timeout": timeout,
                               "retries": 1})
        t0 = time.monotonic()
        out = run_grid(cells, run_cell, process_pool, policy, STATS)
        elapsed = time.monotonic() - t0
        assert not out[0].failed
        assert STATS.timeouts == 1 and STATS.quarantined == 0
        assert elapsed < 2 * timeout + 1.0

    def test_deadline_degrades_cells_process(self, process_pool):
        cells = [Cell("slow0", sleep_s=30.0), Cell("slow1", sleep_s=30.0),
                 Cell("slow2", sleep_s=30.0)]
        policy = PoolPolicy(**{**FAST.__dict__, "deadline": 0.4})
        t0 = time.monotonic()
        out = run_grid(cells, run_cell, process_pool, policy, STATS)
        assert time.monotonic() - t0 < 5.0
        assert all(r.failed and r.error_type == "Timeout" for r in out)
        assert "deadline" in out[0].message

    def test_deadline_degrades_cells_serial(self):
        cells = [Cell("slow", sleep_s=0.3), Cell("late0"), Cell("late1")]
        policy = PoolPolicy(**{**FAST.__dict__, "deadline": 0.1})
        out = run_grid(cells, run_cell, SerialPool(), policy, STATS)
        assert not out[0].failed          # started before the deadline
        assert out[1].failed and out[1].error_type == "Timeout"
        assert out[2].failed and STATS.timeouts == 2


class TestStragglers:
    def test_straggler_gets_speculative_twin(self, tmp_path):
        """First execution of one cell is slow; its twin wins."""
        pool = ProcessPool(3)
        try:
            cells = [Cell("s0"), Cell("s1"), Cell("s2"),
                     Cell("straggler", sleep_s=30.0, sleep_once=True,
                          marker_dir=str(tmp_path))]
            policy = PoolPolicy(
                **{**FAST.__dict__, "straggler_factor": 2.0,
                   "straggler_min_done": 3, "straggler_min_runtime": 0.3})
            out = run_grid(cells, run_cell, pool, policy, STATS)
            assert not any(r.failed for r in out)
            assert out[3].name == "straggler"
            assert STATS.stragglers == 1
            assert STATS.speculative_wins == 1
            assert STATS.quarantined == 0
        finally:
            pool.close()


class TestPoolBreak:
    def test_completed_cells_survive_break(self, tmp_path):
        """Mid-grid worker death: done cells are not re-simulated."""
        pool = ProcessPool(1)        # strict ordering: c0, c1 done first
        try:
            cells = [Cell("c0", marker_dir=str(tmp_path)),
                     Cell("c1", marker_dir=str(tmp_path)),
                     Cell("die", marker_dir=str(tmp_path)),
                     Cell("c3", marker_dir=str(tmp_path))]
            with pytest.warns(RuntimeWarning, match="pool broke mid-grid"):
                out = run_grid(cells, die_cell, pool, FAST, STATS)
            assert [r.name for r in out] == ["c0", "c1", "die", "c3"]
            assert STATS.preserved_on_break == 2
            # completed cells ran exactly once; no re-simulation
            assert run_count(tmp_path, "c0") == 1
            assert run_count(tmp_path, "c1") == 1
            # the dying cell ran in the worker, then again serially
            assert run_count(tmp_path, "die") == 2
        finally:
            pool.close()


def die_cell(cell: Cell):
    """Kill the worker process on the cell named 'die' (first run only)."""
    marker_dir = Path(cell.marker_dir)
    first = not any(marker_dir.glob(f"{cell.name}.*"))
    (marker_dir / f"{cell.name}.{os.getpid()}.{time.monotonic_ns()}") \
        .write_text(cell.name)
    if cell.name == "die" and first:
        os._exit(23)
    return Result(name=cell.name, pid=os.getpid())


class TestBackoff:
    def test_backoff_is_deterministic(self):
        policy = PoolPolicy(backoff_seed=7)
        assert backoff_delay(policy, 3, 1) == backoff_delay(policy, 3, 1)

    def test_backoff_varies_with_seed_and_cell(self):
        a = backoff_delay(PoolPolicy(backoff_seed=1), 0, 1)
        b = backoff_delay(PoolPolicy(backoff_seed=2), 0, 1)
        c = backoff_delay(PoolPolicy(backoff_seed=1), 1, 1)
        assert len({a, b, c}) == 3

    def test_backoff_grows_and_caps(self):
        policy = PoolPolicy(backoff_base=0.1, backoff_factor=2.0,
                            backoff_cap=0.5)
        # jitter is in [0.5, 1.5), so bounds follow the uncapped base
        assert 0.05 <= backoff_delay(policy, 0, 1) < 0.15
        assert 0.1 <= backoff_delay(policy, 0, 2) < 0.3
        assert backoff_delay(policy, 0, 10) < 0.75   # capped at 0.5 x 1.5


class TestEngineIntegration:
    """execute_many through explicit policies and backends."""

    GOOD = ExperimentSpec("streams.copy", "T", 0.02)

    def test_forced_serial_backend(self):
        from repro.harness.engine import execute_many

        out = execute_many([self.GOOD], jobs=4,
                           policy=PoolPolicy(backend="serial"))
        assert not out[0].failed

    def test_forced_process_backend_single_job(self):
        from repro.harness.engine import execute_many

        out = execute_many([self.GOOD],
                           policy=PoolPolicy(backend="process"))
        assert not out[0].failed

    def test_injected_pool_is_not_closed(self):
        from repro.harness.engine import execute_many

        pool = SerialPool()
        out = execute_many([self.GOOD], pool=pool)
        assert not out[0].failed
        # SerialPool.close is a no-op; the contract here is just that
        # execute_many ran the grid through the injected backend
        assert run_grid([], None, pool, PoolPolicy(), STATS) == []
