"""Unified experiment engine: specs, routing, fan-out, result cache."""

import pickle

import pytest

from repro.core.config import CONFIGURATIONS, tarantula
from repro.errors import ConfigError
from repro.harness import engine
from repro.harness.engine import (
    ExperimentSpec,
    ResultCache,
    cache_key,
    execute,
    execute_many,
)
from repro.harness.runner import run, run_tarantula
from repro.isa.builder import KernelBuilder
from repro.workloads.registry import get

SCALE = 0.05


def _outcome_fields(out):
    return (out.config_name, out.kernel, out.cycles, out.core_ghz, out.opc,
            out.fpc, out.mpc, out.other_pc, out.streams_mbytes_per_s,
            out.raw_mbytes_per_s, out.verified)


class TestExperimentSpec:
    def test_pickle_round_trip(self):
        spec = ExperimentSpec("streams.triad", "T", SCALE,
                              overrides=(("maf_entries", 8),),
                              check=False, drain_dirty=True)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_overrides_are_order_canonical(self):
        a = ExperimentSpec("fft", overrides=(("maf_entries", 8),
                                             ("l2_bytes", 1 << 20)))
        b = ExperimentSpec("fft", overrides=(("l2_bytes", 1 << 20),
                                             ("maf_entries", 8)))
        assert a == b and hash(a) == hash(b)

    def test_rejects_unknown_config(self):
        with pytest.raises(ConfigError, match="unknown configuration"):
            ExperimentSpec("fft", "EV9")

    def test_rejects_unknown_override_field(self):
        with pytest.raises(ConfigError, match="not a MachineConfig field"):
            ExperimentSpec("fft", overrides=(("l3_bytes", 1),))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError, match="mode"):
            ExperimentSpec("fft", mode="rtl")


class TestL2HintResolution:
    """The workload's l2_bytes_hint is an engine concern: applied on
    vector machines, beaten by an explicit override, off on request."""

    def test_hint_applies_on_vector_machine(self):
        inst = get("sparsemxv").build(SCALE)
        assert inst.l2_bytes_hint is not None
        cfg = ExperimentSpec("sparsemxv", "T", SCALE).resolve_config(inst)
        assert cfg.l2_bytes == inst.l2_bytes_hint

    def test_explicit_override_beats_hint(self):
        inst = get("sparsemxv").build(SCALE)
        spec = ExperimentSpec("sparsemxv", "T", SCALE,
                              overrides=(("l2_bytes", 1 << 22),))
        assert spec.resolve_config(inst).l2_bytes == 1 << 22

    def test_hint_disabled_keeps_machine_l2(self):
        inst = get("sparsemxv").build(SCALE)
        spec = ExperimentSpec("sparsemxv", "T", SCALE, apply_l2_hint=False)
        assert spec.resolve_config(inst).l2_bytes == tarantula().l2_bytes

    def test_scalar_machines_never_take_the_hint(self):
        inst = get("sparsemxv").build(SCALE)
        cfg = ExperimentSpec("sparsemxv", "EV8", SCALE).resolve_config(inst)
        assert cfg.l2_bytes == CONFIGURATIONS["EV8"]().l2_bytes


class TestExecute:
    def test_matches_runner_wrapper(self):
        spec = ExperimentSpec("streams.triad", "T", SCALE, check=True)
        via_engine = execute(spec)
        via_runner = run_tarantula(get("streams.triad"), "T", SCALE)
        assert _outcome_fields(via_engine) == _outcome_fields(via_runner)

    def test_routes_to_scalar_model(self):
        out = execute(ExperimentSpec("streams.triad", "EV8", SCALE))
        assert out.config_name == "EV8"
        assert out.cycles > 0 and out.opc > 0

    def test_functional_mode_counts_vectorization(self):
        out = execute(ExperimentSpec("streams.triad", "T", SCALE,
                                     mode="functional"))
        assert out.verified
        assert out.detail.vectorization_percent > 90.0

    def test_crbox_override_reaches_the_timing_model(self):
        cheap, dear = execute_many(
            [ExperimentSpec("sparsemxv", "T", 0.1, check=False,
                            apply_l2_hint=False,
                            overrides=(("crbox_cycles_per_round", v),))
             for v in (1.0, 8.0)])
        assert dear.cycles > cheap.cycles


class TestExecuteMany:
    GRID = [
        ExperimentSpec("streams.triad", "T", SCALE, check=False),
        ExperimentSpec("streams.triad", "EV8", SCALE),
        ExperimentSpec("streams.copy", "T", SCALE, check=False),
        ExperimentSpec("fft", "T", SCALE, check=False),
    ]

    def test_parallel_matches_serial_exactly(self):
        serial = execute_many(self.GRID, jobs=1)
        parallel = execute_many(self.GRID, jobs=4)
        for a, b in zip(serial, parallel):
            assert _outcome_fields(a) == _outcome_fields(b)

    def test_preserves_input_order(self):
        outs = execute_many(self.GRID, jobs=1)
        assert [o.kernel for o in outs] == [s.kernel for s in self.GRID]
        assert [o.config_name for o in outs] == [s.config for s in self.GRID]

    def test_duplicates_simulated_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec("streams.copy", "T", SCALE, check=False)
        outs = execute_many([spec, spec, spec], jobs=1, cache=cache)
        assert len(outs) == 3
        assert cache.stores == 1
        assert _outcome_fields(outs[0]) == _outcome_fields(outs[2])


class TestResultCache:
    SPEC = ExperimentSpec("streams.copy", "T", SCALE, check=False)

    def test_miss_then_hit_round_trips_outcome(self, tmp_path):
        cache = ResultCache(tmp_path)
        first, = execute_many([self.SPEC], cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
        second, = execute_many([self.SPEC], cache=cache)
        assert cache.hits == 1
        assert _outcome_fields(second) == _outcome_fields(first)
        assert second.detail.cycles == first.detail.cycles

    def test_warm_run_simulates_nothing(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        execute_many([self.SPEC], cache=cache)
        monkeypatch.setattr(
            engine, "_run_vector_instance",
            lambda *a, **kw: pytest.fail("cache hit should not simulate"))
        out, = execute_many([self.SPEC], cache=cache)
        assert out.kernel == "streams.copy"

    def test_config_field_change_busts_key(self):
        base = cache_key(self.SPEC)
        tweaked = ExperimentSpec("streams.copy", "T", SCALE, check=False,
                                 overrides=(("maf_entries", 8),))
        assert cache_key(tweaked) != base

    def test_scale_and_flags_bust_key(self):
        base = cache_key(self.SPEC)
        assert cache_key(ExperimentSpec("streams.copy", "T", 0.06,
                                        check=False)) != base
        assert cache_key(ExperimentSpec("streams.copy", "T", SCALE,
                                        check=False,
                                        drain_dirty=True)) != base

    def test_program_change_busts_digest(self):
        def program(n):
            kb = KernelBuilder("digest-probe")
            kb.setvl(n)
            kb.vvaddt(1, 2, 3)
            return kb.build()

        assert engine._digest_program(program(64)) != \
            engine._digest_program(program(128))
        assert engine._digest_program(program(64)) == \
            engine._digest_program(program(64))

    def test_code_version_salts_key(self, monkeypatch):
        base = cache_key(self.SPEC)
        monkeypatch.setattr(engine, "_code_version_cache", "deadbeef")
        assert cache_key(self.SPEC) != base

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(self.SPEC)
        execute_many([self.SPEC], cache=cache)
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            assert cache.get(key) is None
        # the bad bytes were moved aside, not deleted silently
        assert path.with_suffix(".corrupt").exists()
        assert cache.corrupt == 1
        # and execute_many recovers by re-simulating + re-storing
        out, = execute_many([self.SPEC], cache=cache)
        assert out.cycles > 0
        assert cache.get(key) is not None


class TestRunnerKwargValidation:
    """run() must reject kwargs the routed model cannot honor instead
    of silently dropping them (the old scalar path ate check=...)."""

    def test_scalar_route_rejects_check(self):
        with pytest.raises(TypeError, match="check"):
            run("streams.triad", "EV8", scale=SCALE, check=True)

    def test_vector_route_rejects_unknown(self):
        with pytest.raises(TypeError, match="bogus"):
            run("streams.triad", "T", scale=SCALE, bogus=1)

    def test_vector_route_accepts_flags(self):
        out = run("streams.triad", "T", scale=SCALE, check=False)
        assert not out.verified


class TestInstanceMemo:
    """Per-process workload-instance reuse (engine._build_instance)."""

    def test_instance_reuse_is_deterministic(self):
        engine._INSTANCE_MEMO.clear()
        spec = ExperimentSpec("streams.copy", "T", SCALE)
        first = engine.execute(spec)
        assert ("streams.copy", SCALE) in engine._INSTANCE_MEMO
        memoized = engine._INSTANCE_MEMO[("streams.copy", SCALE)]
        second = engine.execute(spec)
        # the same instance object was reused, and reuse changed nothing
        assert engine._INSTANCE_MEMO[("streams.copy", SCALE)] is memoized
        assert second.cycles == first.cycles
        assert second.detail.counts == first.detail.counts
        assert second.detail.component_stats == first.detail.component_stats
        # a fresh build gives the same answer as the memoized rerun
        engine._INSTANCE_MEMO.clear()
        third = engine.execute(spec)
        assert third.cycles == first.cycles
        assert third.detail.counts == first.detail.counts

    def test_memo_is_bounded(self):
        engine._INSTANCE_MEMO.clear()
        try:
            engine._INSTANCE_MEMO.update(
                {("fake", float(i)): None for i in range(engine._INSTANCE_MEMO_MAX)})
            spec = ExperimentSpec("streams.copy", "T", SCALE, check=False)
            engine.execute(spec)
            assert len(engine._INSTANCE_MEMO) <= engine._INSTANCE_MEMO_MAX
        finally:
            engine._INSTANCE_MEMO.clear()

    def test_memo_evicts_least_recently_used(self):
        # eviction must drop the coldest entry, not clear the table —
        # a long sweep keeps its working set warm
        engine._INSTANCE_MEMO.clear()
        try:
            engine._INSTANCE_MEMO.update(
                {("fake", float(i)): None
                 for i in range(engine._INSTANCE_MEMO_MAX)})
            spec = ExperimentSpec("streams.copy", "T", SCALE, check=False)
            # touch the oldest entry so ("fake", 1.0) becomes coldest
            engine._INSTANCE_MEMO.move_to_end(("fake", 0.0))
            engine.execute(spec)
            memo = engine._INSTANCE_MEMO
            assert len(memo) == engine._INSTANCE_MEMO_MAX
            assert ("fake", 0.0) in memo          # recently touched: kept
            assert ("fake", 1.0) not in memo      # coldest: evicted
            assert ("streams.copy", SCALE) in memo
        finally:
            engine._INSTANCE_MEMO.clear()

    def test_memo_hit_refreshes_recency(self):
        engine._INSTANCE_MEMO.clear()
        try:
            spec = ExperimentSpec("streams.copy", "T", SCALE, check=False)
            engine.execute(spec)
            engine._INSTANCE_MEMO.update(
                {("fake", float(i)): None
                 for i in range(engine._INSTANCE_MEMO_MAX - 2)})
            engine.execute(spec)                  # memo hit: moved to end
            assert next(reversed(engine._INSTANCE_MEMO)) == \
                ("streams.copy", SCALE)
        finally:
            engine._INSTANCE_MEMO.clear()


class TestSpecDigestGolden:
    """The content digest behind the result cache must not drift.

    ``tests/data/spec_digests_v1.json`` pins :func:`engine.spec_digest`
    for the original Table 2 suite at the committed config/scale.  The
    digest covers only what a result depends on (program bytes, scalar
    descriptor, resolved machine config, run flags) — NOT module paths
    or package source — so harness refactors like the suite/matrix
    split must leave every value untouched.  A mismatch here means the
    whole on-disk cache was silently invalidated, or worse, that a
    workload's generated program changed.
    """

    def test_digests_match_committed_golden(self):
        import json
        from pathlib import Path

        data = json.loads(
            (Path(__file__).resolve().parents[1] / "data" /
             "spec_digests_v1.json").read_text())
        assert data["schema"] == "spec-digest-v1"
        drifted = []
        for name, want in data["digests"].items():
            spec = ExperimentSpec(name, data["config"], data["scale"])
            if engine.spec_digest(spec) != want:
                drifted.append(name)
        assert not drifted, (
            f"spec digest drift for {drifted}: cached results for these "
            "workloads were invalidated (see spec_digest docstring)")

    def test_golden_file_covers_the_paper_suite(self):
        import json
        from pathlib import Path

        from repro.workloads.registry import TARANTULA_SUITE

        data = json.loads(
            (Path(__file__).resolve().parents[1] / "data" /
             "spec_digests_v1.json").read_text())
        assert set(data["digests"]) == set(TARANTULA_SUITE)

    def test_cache_key_is_digest_plus_source_salt(self):
        spec = ExperimentSpec("streams.copy", "T", SCALE)
        assert engine.spec_digest(spec) == engine.spec_digest(spec)
        # same digest, but the key changes whenever package source does
        assert cache_key(spec) != engine.spec_digest(spec)
