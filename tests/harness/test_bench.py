"""The ``repro bench`` throughput harness and its CI regression gate."""

import io
import json
from pathlib import Path

import pytest

from repro.harness import bench
from repro.workloads.registry import TARANTULA_SUITE

REPO = Path(__file__).resolve().parents[2]


def test_run_benchmarks_document_shape():
    doc = bench.run_benchmarks(quick=True, kernels=["streams.copy"])
    assert doc["schema"] == bench.SCHEMA
    assert doc["quick"] is True
    assert doc["scale"] == bench.QUICK_SCALE
    w = doc["workloads"]["streams.copy"]
    assert w["instructions"] > 0
    assert w["simulated_cycles"] > 0
    assert w["cold_wall_s"] > 0 and w["warm_wall_s"] > 0
    assert w["warm_instr_per_s"] > 0
    assert doc["totals"]["instructions"] == w["instructions"]


def _doc(warm_total, schema=bench.SCHEMA, scale=bench.QUICK_SCALE):
    return {"schema": schema, "quick": True, "scale": scale,
            "totals": {"warm_wall_s": warm_total}}


def _baseline(tmp_path, doc):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(doc))
    return path


def test_regression_gate_passes_within_tolerance(tmp_path):
    base = _baseline(tmp_path, _doc(10.0))
    assert bench.check_regression(_doc(11.0), base, stream=io.StringIO())


def test_regression_gate_fails_past_tolerance(tmp_path):
    base = _baseline(tmp_path, _doc(10.0))
    stream = io.StringIO()
    assert not bench.check_regression(_doc(12.5), base, stream=stream)
    assert "REGRESSION" in stream.getvalue()


def test_regression_gate_rejects_mismatched_baseline(tmp_path):
    # a baseline recorded at a different scale (or schema) is a
    # configuration error, never a silent pass
    base = _baseline(tmp_path, _doc(10.0, scale=0.25))
    assert not bench.check_regression(_doc(0.01), base, stream=io.StringIO())
    base = _baseline(tmp_path, _doc(10.0, schema="other-v0"))
    assert not bench.check_regression(_doc(0.01), base, stream=io.StringIO())


def test_regression_gate_tolerance_parameter(tmp_path):
    base = _baseline(tmp_path, _doc(10.0))
    assert bench.check_regression(_doc(14.0), base, tolerance=1.5,
                                  stream=io.StringIO())
    assert not bench.check_regression(_doc(14.0), base, tolerance=1.2,
                                      stream=io.StringIO())


def test_committed_baseline_is_fresh():
    """BENCH_sim_throughput.json stays in sync with the default suite.

    The baseline records the ``tarantula`` suite — the paper's own 19
    benchmarks, NOT the whole registry — so the regression gate keeps
    comparing like against like as new suites register.
    """
    path = REPO / bench.DEFAULT_OUTPUT
    assert path.exists(), "run `python -m repro bench --quick` and commit"
    doc = json.loads(path.read_text())
    assert doc["schema"] == bench.SCHEMA
    assert doc["scale"] == bench.QUICK_SCALE
    assert set(doc["workloads"]) == set(TARANTULA_SUITE)


def test_entries_record_their_suite():
    doc = bench.run_benchmarks(quick=True, kernels=["rivec.axpy"])
    assert doc["workloads"]["rivec.axpy"]["suite"] == "rivec"


def test_unknown_suite_rejected_with_suggestion():
    with pytest.raises(KeyError, match="did you mean: rivec"):
        bench.run_benchmarks(quick=True, suite="rivecc")


def test_main_writes_output_and_gates(tmp_path, monkeypatch, capsys):
    out = tmp_path / "bench.json"
    rc = bench.main(quick=True, output=str(out), kernels=["streams.copy"])
    assert rc == 0
    doc = json.loads(out.read_text())
    # self-comparison always passes the gate
    rc = bench.main(quick=True, output=None, check_against=str(out),
                    kernels=["streams.copy"])
    assert rc == 0
    # an impossible baseline fails it
    doc["totals"]["warm_wall_s"] = 1e-9
    out.write_text(json.dumps(doc))
    rc = bench.main(quick=True, output=None, check_against=str(out),
                    kernels=["streams.copy"])
    assert rc == 1


def test_interrupt_keeps_partial_document(monkeypatch):
    real = bench._run_once

    def interrupting(name, scale):
        if name == "streams.add":
            raise KeyboardInterrupt
        return real(name, scale)

    monkeypatch.setattr(bench, "_run_once", interrupting)
    progress = io.StringIO()
    doc = bench.run_benchmarks(
        quick=True, progress=progress,
        kernels=["streams.copy", "streams.add", "streams.triad"])
    assert doc["interrupted"] is True
    assert "streams.copy" in doc["workloads"]
    assert doc["incomplete"] == {
        "streams.add": "interrupted (Ctrl-C)",
        "streams.triad": "interrupted (Ctrl-C)"}
    assert "interrupted" in progress.getvalue()


def test_interrupted_run_never_passes_the_gate(tmp_path, monkeypatch):
    # first take an honest quick baseline
    out = tmp_path / "baseline.json"
    assert bench.main(quick=True, output=str(out),
                      kernels=["streams.copy"]) == 0

    def interrupting(name, scale):
        raise KeyboardInterrupt

    monkeypatch.setattr(bench, "_run_once", interrupting)
    partial = tmp_path / "partial.json"
    rc = bench.main(quick=True, output=str(partial),
                    check_against=str(out), kernels=["streams.copy"])
    # the gate rejects the incomplete run (1) before the interrupt
    # status (130) is consulted; either way the exit is non-zero
    assert rc in (1, 130)
    doc = json.loads(partial.read_text())
    assert doc["interrupted"] is True
    assert doc["workloads"] == {}


def test_interrupt_exit_status_is_130(tmp_path, monkeypatch):
    def interrupting(name, scale):
        raise KeyboardInterrupt

    monkeypatch.setattr(bench, "_run_once", interrupting)
    out = tmp_path / "partial.json"
    rc = bench.main(quick=True, output=str(out),
                    kernels=["streams.copy"])
    assert rc == 130
    assert json.loads(out.read_text())["interrupted"] is True


class _FakeOutcome:
    """Minimal stand-in for a RunOutcome (constant cycles)."""

    def __init__(self, cycles=42.0):
        self.cycles = cycles
        self.failed = False
        self.detail = type("D", (), {})()
        self.detail.counts = type("C", (), {})()
        self.detail.counts.scalar_instructions = 5
        self.detail.counts.vector_instructions = 7


def test_jit_sidecar_fields_present_when_enabled(monkeypatch):
    from repro import jit

    monkeypatch.setattr(jit, "_FORCED", True)
    monkeypatch.setattr(bench, "_run_once",
                        lambda name, scale: (0.5, _FakeOutcome()))
    doc = bench.run_benchmarks(quick=True, kernels=["streams.copy"])
    assert doc["jit"] == {"enabled": True}
    w = doc["workloads"]["streams.copy"]
    assert w["jit_off_warm_s"] == 0.5
    assert w["jit_speedup"] == 1.0
    assert doc["totals"]["jit_off_warm_s"] == 0.5
    assert doc["totals"]["jit_speedup"] == 1.0


def test_jit_sidecar_absent_when_disabled(monkeypatch):
    from repro import jit

    monkeypatch.setattr(jit, "_FORCED", False)
    monkeypatch.setattr(bench, "_run_once",
                        lambda name, scale: (0.5, _FakeOutcome()))
    doc = bench.run_benchmarks(quick=True, kernels=["streams.copy"])
    assert doc["jit"] == {"enabled": False}
    assert "jit_off_warm_s" not in doc["workloads"]["streams.copy"]
    assert "jit_off_warm_s" not in doc["totals"]
    assert "jit_speedup" not in doc["totals"]


def test_jit_sidecar_divergence_fails_the_benchmark(monkeypatch):
    # the sidecar doubles as a differential gate: a JIT-off rerun that
    # lands on different cycles is a soundness bug, not a measurement
    from repro import jit

    monkeypatch.setattr(jit, "_FORCED", True)
    monkeypatch.setattr(
        bench, "_run_once",
        lambda name, scale:
            (0.5, _FakeOutcome(42.0 if jit.enabled() else 41.0)))
    with pytest.raises(RuntimeError, match="diverged with the JIT off"):
        bench.run_benchmarks(quick=True, kernels=["streams.copy"])
