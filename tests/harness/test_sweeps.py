"""Sensitivity-sweep utilities (small, fast configurations)."""

from repro.harness.engine import ResultCache
from repro.harness.sweeps import (
    render_sweep,
    sweep_cr_cost,
    sweep_maf_entries,
)


def test_maf_sweep_monotone_improvement():
    curve = sweep_maf_entries(values=(2, 32), scale=0.1)
    assert curve[2] >= curve[32]


def test_sweep_parallel_cached_matches_serial(tmp_path):
    serial = sweep_maf_entries(values=(2, 32), scale=0.1)
    cache = ResultCache(tmp_path)
    parallel = sweep_maf_entries(values=(2, 32), scale=0.1, jobs=2,
                                 cache=cache)
    assert parallel == serial
    assert cache.stores == 2
    # warm rerun loads both points from the cache
    assert sweep_maf_entries(values=(2, 32), scale=0.1, cache=cache) == serial
    assert cache.hits == 2


def test_cr_sweep_monotone_cost():
    curve = sweep_cr_cost(values=(1.0, 8.0), scale=0.1)
    assert curve[8.0] > curve[1.0]


def test_render_sweep_text():
    text = render_sweep("demo", {1: 100.0, 2: 200.0}, " u")
    assert "demo" in text and "2.00x" in text
