"""Figure generators: smoke tests on small kernel subsets."""

import pytest

from repro.harness.figures import (
    figure6,
    figure7,
    figure8,
    figure9,
    scale_for,
)

SUBSET = ("streams.copy", "art")


class TestFigureGenerators:
    def test_figure6_subset(self):
        rows = figure6(kernels=SUBSET, quick=True)
        assert set(rows) == set(SUBSET)
        for row in rows.values():
            assert row.opc > 0
            assert row.opc == pytest.approx(
                row.fpc + row.mpc + row.other, rel=0.01)

    def test_figure7_subset(self):
        rows = figure7(kernels=SUBSET, quick=True)
        for row in rows.values():
            assert row.speedup_tarantula > 0
            assert row.speedup_ev8_plus > 0

    def test_figure8_subset(self):
        rows = figure8(kernels=("art",), quick=True)
        row = rows["art"]
        assert row.speedup_t10 >= row.speedup_t4 * 0.9

    def test_figure9_subset(self):
        rows = figure9(kernels=("streams.copy",), quick=True)
        assert rows["streams.copy"].relative_performance <= 1.05

    def test_scale_for_quick_factor(self):
        assert scale_for("dgemm", quick=True) == \
            pytest.approx(scale_for("dgemm") * 0.25)
        assert scale_for("unknown-kernel") == 1.0
