"""Component bucketing for ``--profile`` (repro.harness.profiling)."""

import io

from repro.harness import profiling


def test_bucket_of_maps_simulator_layers():
    assert profiling.bucket_of("/x/src/repro/mem/banks.py") == "mem"
    assert profiling.bucket_of("/x/src/repro/vbox/address_gen.py") == "vbox"
    assert profiling.bucket_of("/x/src/repro/isa/semantics.py") == "isa"
    assert profiling.bucket_of("/lib/numpy/_core/numeric.py") == "numpy"
    assert profiling.bucket_of("<built-in>") == "other"
    assert profiling.bucket_of("~") == "other"
    # windows-style separators normalize before matching
    assert profiling.bucket_of("C:\\x\\repro\\core\\processor.py") == "core"


def test_aggregate_uses_exclusive_time():
    class FakeStats:
        stats = {
            ("/x/repro/mem/banks.py", 10, "access"): (5, 5, 1.5, 9.0, {}),
            ("/x/repro/mem/l2cache.py", 20, "step"): (2, 2, 0.5, 3.0, {}),
            ("/x/repro/core/processor.py", 5, "run"): (1, 1, 2.0, 9.0, {}),
        }

    buckets = profiling.aggregate(FakeStats())
    # tottime sums per bucket; cumulative time is ignored so a
    # core->mem call chain is not counted twice
    assert buckets["mem"] == {"tottime": 2.0, "calls": 7}
    assert buckets["core"] == {"tottime": 2.0, "calls": 1}
    assert sum(b["tottime"] for b in buckets.values()) == 4.0


def test_render_orders_by_time():
    table = profiling.render(
        {"mem": {"tottime": 3.0, "calls": 10},
         "core": {"tottime": 1.0, "calls": 5}}, total=4.0)
    assert table.index("mem") < table.index("core")
    assert "75.0%" in table


def test_profiled_writes_table_to_stream_not_stdout(capsys):
    stream = io.StringIO()
    with profiling.profiled(stream=stream):
        sum(range(10000))
    text = stream.getvalue()
    assert text.startswith("profile:")
    assert "component" in text
    # stdout stays byte-identical with and without --profile
    assert capsys.readouterr().out == ""


def test_profiled_survives_exceptions():
    stream = io.StringIO()
    try:
        with profiling.profiled(stream=stream):
            raise ValueError("boom")
    except ValueError:
        pass
    assert stream.getvalue().startswith("profile:")


def test_cli_exposes_profile_flag():
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.parse_args(["report", "--quick", "--profile"]).profile
    assert parser.parse_args(["chaos", "--profile"]).profile
    args = parser.parse_args(["bench", "--quick", "--kernel", "lu"])
    assert args.quick and args.kernel == ["lu"]
