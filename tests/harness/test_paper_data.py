"""Sanity of the transcribed paper data used for comparisons."""

from repro.harness import paper_data
from repro.workloads.registry import FIGURE_SUITE, TABLE4_SUITE


def test_table4_covers_the_suite():
    assert set(paper_data.TABLE4) == set(TABLE4_SUITE)
    for name, row in paper_data.TABLE4.items():
        assert row["streams"] > 0
        assert row["raw"] is None or row["raw"] >= row["streams"]


def test_figure_readings_cover_the_suite():
    assert set(paper_data.FIGURE6_OPC) == set(FIGURE_SUITE)
    assert set(paper_data.FIGURE7_SPEEDUP_T) == set(FIGURE_SUITE)


def test_opc_readings_within_machine_peak():
    """Bar readings must respect the 104-op/cycle hardware ceiling and
    the paper's stated 10-to-50 range."""
    values = paper_data.FIGURE6_OPC.values()
    assert all(5 <= v <= 50 for v in values)


def test_speedups_positive_and_bounded():
    for v in paper_data.FIGURE7_SPEEDUP_T.values():
        assert 1.0 < v <= 20.0


def test_claims_consistent():
    claims = paper_data.CLAIMS
    assert claims["peak_flop_ratio"] == 8.0
    assert claims["peak_operations_per_cycle"] == 104
    # "almost 3X" for radix and the 15-OPC figure come as a pair
    assert claims["ccradix_speedup"] < claims["average_speedup_over_ev8"]
