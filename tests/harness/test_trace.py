"""Pipeline-trace facility tests."""

from repro.harness.trace import critical_summary, render_gantt, trace_program
from repro.isa.builder import KernelBuilder


def _program():
    kb = KernelBuilder("traced")
    kb.lda(1, 0x100000)
    kb.setvl(128)
    kb.setvs(8)
    for blk in range(4):
        kb.vloadq(2, rb=1, disp=blk * 1024)
        kb.vvaddt(3, 2, 2)
        kb.vstoreq(3, rb=1, disp=0x8000 + blk * 1024)
    return kb.build()


class TestTraceProgram:
    def test_every_instruction_recorded(self):
        entries, cycles = trace_program(_program())
        assert len(entries) == len(_program())
        assert cycles >= max(e.complete for e in entries) - 1e-9

    def test_dispatch_before_completion(self):
        entries, _ = trace_program(_program())
        for e in entries:
            assert e.complete >= e.dispatch

    def test_warm_ranges_reduce_latency(self):
        cold, _ = trace_program(_program())
        warm, _ = trace_program(_program(),
                                warm_ranges=[(0x100000, 1 << 16)])
        cold_load = next(e for e in cold if "vloadq" in e.text)
        warm_load = next(e for e in warm if "vloadq" in e.text)
        assert warm_load.latency < cold_load.latency


class TestRendering:
    def test_gantt_contains_bars(self):
        entries, _ = trace_program(_program())
        chart = render_gantt(entries)
        assert "#" in chart
        assert "vloadq" in chart

    def test_empty_window(self):
        assert "empty" in render_gantt([], start=100)

    def test_critical_summary_sorted(self):
        entries, _ = trace_program(_program())
        hot = critical_summary(entries, top=3)
        assert len(hot) == 3
        assert hot[0].latency >= hot[1].latency >= hot[2].latency
