"""Concurrent ResultCache writers: atomic replace, no debris.

Two real processes ``put()`` the same key at the same instant (a
barrier lines them up).  The crash-safe write protocol — tmp file,
fsync, atomic ``os.replace`` — must leave exactly one valid committed
entry and zero ``*.tmp.*`` debris, whichever writer wins.  This is the
property the serve layer leans on when duplicate submissions race a
cache slot across worker processes.
"""

import multiprocessing
from pathlib import Path

from repro.harness.engine import ResultCache, RunOutcome

KEY = "ab" + "0" * 62


def outcome_for(writer_id: int) -> RunOutcome:
    return RunOutcome(config_name="T", kernel="streams.copy",
                      cycles=float(writer_id + 1), core_ghz=1.25)


def _writer(root: str, barrier, writer_id: int) -> None:
    cache = ResultCache(Path(root))
    barrier.wait(timeout=30)
    cache.put(KEY, outcome_for(writer_id))


class TestConcurrentWriters:
    def test_simultaneous_puts_leave_one_valid_entry(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        n = 4
        barrier = ctx.Barrier(n)
        procs = [ctx.Process(target=_writer,
                             args=(str(tmp_path), barrier, i))
                 for i in range(n)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0

        committed = list(tmp_path.rglob("*.pkl"))
        assert len(committed) == 1
        assert committed[0].name == f"{KEY}.pkl"
        assert list(tmp_path.rglob("*.tmp.*")) == []

        cache = ResultCache(tmp_path)
        value = cache.get(KEY)
        assert isinstance(value, RunOutcome)
        assert value.cycles in {float(i + 1) for i in range(n)}
        assert cache.corrupt == 0

    def test_interleaved_distinct_keys_all_commit(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        keys = [f"{i:02x}" + "f" * 62 for i in range(3)]

        def put_all(root, barrier, writer_id):
            cache = ResultCache(Path(root))
            barrier.wait(timeout=30)
            for key in keys:
                cache.put(key, outcome_for(writer_id))

        barrier = ctx.Barrier(2)
        procs = [ctx.Process(target=put_all,
                             args=(str(tmp_path), barrier, i))
                 for i in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        cache = ResultCache(tmp_path)
        for key in keys:
            assert isinstance(cache.get(key), RunOutcome)
        assert list(tmp_path.rglob("*.tmp.*")) == []
        assert cache.corrupt == 0
