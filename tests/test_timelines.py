"""Resource timeline primitives: in-order, calendar (backfill), ports."""

import pytest

from repro.utils.timeline import (
    CalendarTimeline,
    MultiPortTimeline,
    ResourceTimeline,
)


class TestResourceTimeline:
    def test_serializes(self):
        r = ResourceTimeline()
        assert r.reserve(0.0, 4.0) == 0.0
        assert r.reserve(0.0, 4.0) == 4.0
        assert r.reserve(10.0, 1.0) == 10.0

    def test_peek_does_not_reserve(self):
        r = ResourceTimeline()
        r.reserve(0.0, 5.0)
        assert r.peek(0.0) == 5.0
        assert r.peek(0.0) == 5.0

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            ResourceTimeline().reserve(0.0, -1.0)

    def test_utilization(self):
        r = ResourceTimeline()
        r.reserve(0.0, 5.0)
        assert r.utilization(10.0) == pytest.approx(0.5)


class TestCalendarTimeline:
    def test_backfills_earlier_gap(self):
        c = CalendarTimeline()
        assert c.reserve(100.0, 1.0) == 100.0
        # a later-arriving request for an earlier slot gets it
        assert c.reserve(5.0, 1.0) == 5.0

    def test_no_overlap(self):
        c = CalendarTimeline()
        c.reserve(0.0, 10.0)
        assert c.reserve(3.0, 2.0) == 10.0

    def test_fills_exact_gap(self):
        c = CalendarTimeline()
        c.reserve(0.0, 2.0)
        c.reserve(6.0, 2.0)
        assert c.reserve(0.0, 4.0) == 2.0   # exactly fits [2,6)
        assert c.reserve(0.0, 1.0) == 8.0   # nothing earlier left

    def test_skips_too_small_gaps(self):
        c = CalendarTimeline()
        c.reserve(0.0, 2.0)
        c.reserve(3.0, 2.0)   # gap [2,3) is 1 cycle wide
        assert c.reserve(0.0, 2.0) == 5.0

    def test_dense_sequence_is_contiguous(self):
        c = CalendarTimeline()
        starts = [c.reserve(0.0, 1.0) for _ in range(50)]
        assert starts == [float(i) for i in range(50)]
        # coalescing keeps the interval list tiny
        assert len(c._busy) == 1

    def test_peek_matches_reserve(self):
        c = CalendarTimeline()
        c.reserve(0.0, 4.0)
        assert c.peek(1.0) == 4.0
        assert c.reserve(1.0, 1.0) == 4.0

    def test_pruning_keeps_memory_bounded(self):
        c = CalendarTimeline()
        step = 2.0
        for i in range(20000):
            c.reserve(i * step, 1.0)  # half-utilized, never coalesces
        assert len(c._busy) < 2 * CalendarTimeline.PRUNE_SLACK / step + 4096

    def test_randomized_never_overlaps(self, rng):
        c = CalendarTimeline()
        intervals = []
        for _ in range(500):
            earliest = float(rng.integers(0, 1000))
            occ = float(rng.integers(1, 7))
            start = c.reserve(earliest, occ)
            assert start >= earliest
            intervals.append((start, start + occ))
        intervals.sort()
        for (s0, e0), (s1, e1) in zip(intervals, intervals[1:]):
            assert e0 <= s1 + 1e-9


class TestMultiPortTimeline:
    def test_parallel_ports(self):
        m = MultiPortTimeline(2)
        assert m.reserve(0.0, 4.0) == 0.0
        assert m.reserve(0.0, 4.0) == 0.0
        assert m.reserve(0.0, 4.0) == 4.0

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            MultiPortTimeline(0)

    def test_utilization_accounts_all_ports(self):
        m = MultiPortTimeline(4)
        m.reserve(0.0, 8.0)
        assert m.utilization(8.0) == pytest.approx(0.25)
