"""Every workload: functional correctness vs its numpy reference,
metadata sanity, and Table 2 attributes.

Each ``run_functional`` call below is an end-to-end check: the kernel's
hand-vectorized program runs on the functional simulator against real
memory contents and the outputs are compared against numpy.
"""

import pytest

from repro.workloads.base import run_functional
from repro.workloads.registry import FIGURE_SUITE, REGISTRY, TABLE4_SUITE, get

#: scales that keep the functional runs fast in CI
TEST_SCALES = {
    "streams.copy": 0.05, "streams.scale": 0.05, "streams.add": 0.05,
    "streams.triad": 0.05,
    "rndcopy": 0.05, "rndmemscale": 0.05,
    "swim": 0.25, "swim.untiled": 0.25,
    "art": 0.25, "sixtrack": 0.1,
    "dgemm": 0.05, "dtrmm": 0.05,
    "sparsemxv": 0.1, "fft": 0.5,
    "lu": 0.2, "linpack100": None,   # linpack100 is fixed-size
    "linpacktpp": 0.05,
    "moldyn": 0.25, "ccradix": 0.1,
    # the rivec port (docs/WORKLOADS.md)
    "rivec.axpy": 0.1, "rivec.pathfinder": 0.1,
    "rivec.blackscholes": 0.1, "rivec.jacobi2d": 0.1,
    "rivec.spmv.csr": 0.1, "rivec.spmv.ell": 0.1,
    "rivec.streamcluster": 0.1,
}


@pytest.mark.parametrize("name", sorted(n for n in REGISTRY
                                        if n != "linpack100"))
def test_kernel_matches_numpy_reference(name):
    workload = get(name)
    counts = run_functional(workload.build(TEST_SCALES[name]))
    assert counts.total > 0


@pytest.mark.slow
def test_linpack100_matches_reference():
    counts = run_functional(get("linpack100").build())
    assert counts.vectorization_percent > 90


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_metadata_complete(name):
    w = get(name)
    assert w.name == name
    assert w.description
    assert w.category
    assert w.inputs


@pytest.mark.parametrize("name", sorted(n for n in REGISTRY
                                        if n != "linpack100"))
def test_vectorization_percent_high(name):
    """Table 2 reports 93.7-99.9% dynamic vectorization across the
    suite; our hand-vectorized kernels must be in the same regime."""
    counts = run_functional(get(name).build(TEST_SCALES[name]))
    assert counts.vectorization_percent > 90.0


def test_registry_covers_figures_and_table4():
    assert set(FIGURE_SUITE) <= set(REGISTRY)
    assert set(TABLE4_SUITE) <= set(REGISTRY)
    assert len(FIGURE_SUITE) == 12   # the paper's application bars


def test_every_registered_workload_has_a_test_scale():
    """New workloads must opt into the CI-fast census above."""
    assert set(REGISTRY) - {"linpack100"} <= set(TEST_SCALES)


def test_unknown_workload_rejected():
    with pytest.raises(KeyError, match="unknown workload"):
        get("nonexistent")


def test_scalar_descriptors_consistent():
    for name in REGISTRY:
        inst = get(name).build(TEST_SCALES.get(name) or 1.0)
        loop = inst.scalar_loop
        assert loop.iterations > 0
        assert loop.ops_per_iter > 0
        for stream in loop.streams:
            assert stream.footprint_bytes > 0


def test_workloads_declare_prefetch_like_table2():
    assert get("streams.copy").uses_prefetch
    assert get("dgemm").uses_prefetch
    assert not get("linpack100").uses_prefetch


def test_surrogates_flagged():
    for name in ("swim", "art", "sixtrack"):
        assert get(name).surrogate
    assert not get("dgemm").surrogate
