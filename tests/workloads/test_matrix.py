"""The Suite x Instance matrix model (repro.workloads.suite).

Covers the declarative layer the harness now builds its grids from:
construction invariants (duplicate/empty rejection), registry lookups
with spelling suggestions, deterministic workload-major expansion, and
— end to end over the rivec suite — byte-identical parallel vs serial
grid execution through ``engine.execute_many``.
"""

import pickle

import pytest

from repro.errors import ConfigError
from repro.workloads.registry import REGISTRY, RIVEC_SUITE, TARANTULA_SUITE
from repro.workloads.suite import (
    FAMILIES,
    SUITES,
    Instance,
    InstanceFamily,
    Matrix,
    Suite,
    get_family,
    get_suite,
    list_families,
    list_suites,
)


class TestSuite:
    def test_is_a_tuple_of_names(self):
        s = Suite("s", ("dgemm", "fft"))
        assert s == ("dgemm", "fft")
        assert list(s) == ["dgemm", "fft"]
        assert "fft" in s and len(s) == 2
        assert s.workloads == ("dgemm", "fft")

    def test_rejects_duplicate_workloads(self):
        with pytest.raises(ConfigError, match="duplicate workload 'dgemm'"):
            Suite("s", ("dgemm", "fft", "dgemm"))

    def test_rejects_empty(self):
        with pytest.raises(ConfigError, match="no workloads"):
            Suite("s", ())

    def test_validate_catches_unregistered_names(self):
        with pytest.raises(ConfigError, match="unknown workload 'bogus'"):
            Suite("s", ("dgemm", "bogus")).validate(REGISTRY)
        assert Suite("s", ("dgemm",)).validate(REGISTRY) is not None

    def test_pickle_round_trip_keeps_metadata(self):
        s = Suite("s", ("dgemm",), title="t", source="src")
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        assert (clone.name, clone.title, clone.source) == ("s", "t", "src")


class TestInstanceFamily:
    def test_rejects_duplicate_instance_names(self):
        with pytest.raises(ConfigError, match="duplicate instance"):
            InstanceFamily("f", (Instance("a"), Instance("a", config="EV8")))

    def test_rejects_empty_and_non_instances(self):
        with pytest.raises(ConfigError, match="no instances"):
            InstanceFamily("f", ())
        with pytest.raises(ConfigError, match="is not an Instance"):
            InstanceFamily("f", ("T",))

    def test_instance_rejects_unknown_config(self):
        with pytest.raises(ConfigError, match="unknown configuration"):
            Instance("x", config="EV9")

    def test_instance_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigError, match="must be positive"):
            Instance("x", scale_factor=0.0)

    def test_of_configs_builds_one_instance_per_config(self):
        fam = InstanceFamily.of_configs("f", ("T", "EV8"))
        assert fam.instance_names == ("T", "EV8")
        assert all(i.config == i.name for i in fam)


class TestRegistries:
    def test_shipped_suites_and_families_registered(self):
        # the paper suite, the figure/table subsets, and the rivec port
        assert len(SUITES) >= 3
        assert {"tarantula", "rivec"} <= set(SUITES)
        assert {"default", "baselines", "scaling", "pump"} <= set(FAMILIES)
        assert [s.name for s in list_suites()] == list(SUITES)
        assert [f.name for f in list_families()] == list(FAMILIES)

    def test_registry_covers_both_benchmark_families(self):
        assert len(REGISTRY) >= 25
        assert set(TARANTULA_SUITE) <= set(REGISTRY)
        assert set(RIVEC_SUITE) <= set(REGISTRY)
        assert not set(TARANTULA_SUITE) & set(RIVEC_SUITE)

    def test_unknown_suite_suggests_close_match(self):
        with pytest.raises(KeyError, match="did you mean: rivec"):
            get_suite("rivecc")

    def test_unknown_family_suggests_close_match(self):
        with pytest.raises(KeyError, match="did you mean: baselines"):
            get_family("baseline")


class TestMatrixExpansion:
    def test_cells_are_workload_major_and_deterministic(self):
        suite = Suite("s", ("fft", "dgemm"))
        family = InstanceFamily.of_configs("f", ("T", "EV8"))
        matrix = Matrix(suite, family, scales=0.1)
        pairs = [(w, i.name) for w, i, _ in matrix.cells()]
        assert pairs == [("fft", "T"), ("fft", "EV8"),
                         ("dgemm", "T"), ("dgemm", "EV8")]
        # expansion is pure: a second call yields identical specs
        assert matrix.specs() == matrix.specs()

    def test_scale_resolution(self):
        suite = Suite("s", ("fft", "dgemm"))
        inst = Instance("T2x", scale_factor=2.0)
        family = InstanceFamily("f", (inst,))
        # mapping: named kernels take their scale, misses fall back to
        # the workload default (dgemm's default_scale is 1.0)
        m = Matrix(suite, family, scales={"fft": 0.5})
        assert m.scale_for("fft", inst) == pytest.approx(1.0)
        assert m.scale_for("dgemm", inst) == pytest.approx(
            2.0 * REGISTRY["dgemm"].default_scale)
        # uniform float, with the quick quarter-factor on top
        mq = Matrix(suite, family, scales=0.4, quick=True)
        assert mq.scale_for("fft", inst) == pytest.approx(0.4 * 2.0 * 0.25)

    def test_adjust_hook_rewrites_cells(self):
        import dataclasses

        suite = Suite("s", ("fft",))
        family = InstanceFamily("f", (Instance("T"),))
        m = Matrix(suite, family, scales=0.1,
                   adjust=lambda spec, w, i: dataclasses.replace(
                       spec, drain_dirty=True))
        (cell,) = m.cells()
        assert cell[2].drain_dirty


class TestMatrixRun:
    def test_parallel_matches_serial_over_rivec(self):
        """Grid fan-out must not change results: the same rivec matrix
        run serially and with worker processes yields byte-identical
        outcomes (satellite of the suite refactor)."""
        matrix = Matrix(RIVEC_SUITE, get_family("default"), scales=0.05,
                        check=True)
        serial = matrix.run(jobs=1)
        parallel = matrix.run(jobs=2)
        assert set(serial) == set(RIVEC_SUITE)
        for name in RIVEC_SUITE:
            a, b = serial[name]["T"], parallel[name]["T"]
            assert not getattr(a, "failed", False), name
            assert a.verified and b.verified
            assert (a.cycles, a.opc, a.fpc, a.mpc) == \
                (b.cycles, b.opc, b.fpc, b.mpc), name
