"""The rivec suite: RiVEC-style kernels ported to the Tarantula ISA.

The generic registry gates (lint, trace-differential soundness,
functional reference check) already parametrize over every registered
workload and so cover these kernels automatically; this file pins what
is specific to the port — provenance metadata, membership, a stricter
zero-warning lint bar, and reference correctness at a second problem
shape (the generic census runs one scale per kernel).
"""

import pytest

from repro.analysis import Severity, lint_program
from repro.workloads.base import run_functional
from repro.workloads.registry import RIVEC_SUITE, get
from repro.workloads.rivec import RIVEC_SOURCE


def test_suite_membership_and_order():
    # dense kernels first, then the sparse/irregular ones, names sorted
    # within each group — the order list-suites and reports print
    assert RIVEC_SUITE == (
        "rivec.axpy", "rivec.blackscholes", "rivec.jacobi2d",
        "rivec.pathfinder", "rivec.spmv.csr", "rivec.spmv.ell",
        "rivec.streamcluster")
    assert RIVEC_SUITE.name == "rivec"
    assert RIVEC_SUITE.source


@pytest.mark.parametrize("name", RIVEC_SUITE)
def test_port_metadata(name):
    w = get(name)
    assert w.category == "RiVEC"
    assert not w.surrogate
    # the paper reports no vectorization column for a different suite
    assert w.paper_vectorization_pct is None
    assert RIVEC_SOURCE.startswith("RiVEC")


@pytest.mark.parametrize("name", RIVEC_SUITE)
def test_lints_with_zero_warnings(name):
    """Stricter than the registry error gate: a fresh port must also be
    warning-free (stale masks, dead writes, self-overlapping stores)."""
    instance = get(name).build_small()
    report = lint_program(instance.program, buffers=instance.buffers)
    assert not report.errors, report.format(min_severity=Severity.ERROR)
    assert not report.warnings, report.format(min_severity=Severity.WARNING)


@pytest.mark.parametrize("name", RIVEC_SUITE)
def test_reference_match_at_second_shape(name):
    """Correctness at a scale the other gates don't use: 0.3 changes
    block counts, remainder vector lengths, and sparse row populations
    relative to build_small and the census scale."""
    counts = run_functional(get(name).build(0.3))
    assert counts.total > 0
    assert counts.vectorization_percent > 90.0
