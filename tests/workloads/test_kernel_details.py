"""Kernel-specific behaviors beyond end-to-end correctness."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.base import Arena, run_functional
from repro.workloads.fft import digit_reverse_base4
from repro.workloads.registry import get


class TestArena:
    def test_sequential_disjoint_allocation(self):
        arena = Arena(base=0x1000, padding=64)
        a = arena.alloc("a", 100)
        b = arena.alloc("b", 100)
        assert b >= a + 100 + 64
        assert arena.region("a") == (a, 100)

    def test_alignment(self):
        arena = Arena(base=0x1001)
        a = arena.alloc("a", 8, align=64)
        assert a % 64 == 0

    def test_duplicate_name_rejected(self):
        arena = Arena()
        arena.alloc("x", 8)
        with pytest.raises(ConfigError):
            arena.alloc("x", 8)


class TestFFTDetails:
    def test_digit_reversal_is_an_involution(self):
        perm = digit_reverse_base4(64)
        assert np.array_equal(perm[perm], np.arange(64))

    def test_digit_reversal_base4(self):
        perm = digit_reverse_base4(16)
        # position 1 = digits (0,1) reverses to (1,0) = 4
        assert perm[1] == 4
        assert perm[5] == 5  # (1,1) is a palindrome

    def test_non_power_of_4_rejected(self):
        with pytest.raises(ValueError):
            digit_reverse_base4(32)

    def test_fft_kernel_is_pure_stride1(self):
        """The batched layout makes every access unit-stride: no
        gathers, no odd strides (the paper's fft is ILP-friendly)."""
        inst = get("fft").build(0.5)
        ops = {i.op for i in inst.program}
        assert "vgathq" not in ops and "vscatq" not in ops


class TestCCRadixDetails:
    def test_sort_is_correct_with_heavy_duplicates(self):
        # duplicates stress the stability-dependent multi-pass logic
        inst = get("ccradix").build(0.1)
        run_functional(inst)   # raises if the final order is wrong

    def test_uses_all_three_access_paths(self):
        inst = get("ccradix").build(0.1)
        ops = [i.op for i in inst.program]
        assert "vgathq" in ops and "vscatq" in ops   # CR box
        strides = {i.imm for i in inst.program if i.op == "setvs"}
        assert 8 in strides                          # stride-1 phases
        assert any(s > 8 for s in strides)           # padded odd stride


class TestMoldynDetails:
    def test_mask_fraction_is_substantial(self):
        """The cutoff quantile keeps ~45% of pairs active — the regime
        where masked execution pays (section 6)."""
        from repro.core.functional import FunctionalSimulator

        inst = get("moldyn").build(0.25)
        sim = FunctionalSimulator()
        inst.setup(sim.memory)
        masked_ops = 0
        total_masked_slots = 0
        for instr in inst.program:
            sim.step(instr)
            if instr.masked and instr.definition.flops:
                masked_ops += sim.active_elements(instr)
                total_masked_slots += 128
        assert 0.3 < masked_ops / total_masked_slots < 0.6

    def test_uses_masks_and_gathers(self):
        inst = get("moldyn").build(0.25)
        assert any(i.masked for i in inst.program)
        assert any(i.op == "vgathq" for i in inst.program)


class TestSwimVariants:
    def test_tiled_and_untiled_compute_identical_results(self):
        """The ablation variants differ only in traversal order."""
        from repro.core.functional import FunctionalSimulator

        outputs = []
        for name in ("swim", "swim.untiled"):
            inst = get(name).build(0.3)
            sim = FunctionalSimulator()
            inst.setup(sim.memory)
            sim.run(inst.program)
            inst.check(sim.memory)
            outputs.append(sim.counts.flops)
        assert outputs[0] == outputs[1]   # same arithmetic, same count


class TestLinpackContrast:
    def test_lu_emits_fewer_memory_instructions_than_tpp(self):
        """Register tiling reuses the pivot column: fewer loads for the
        same flops (the section-6 LU story)."""
        lu = get("lu").build(0.3)
        # build a TPP instance at the same matrix size as this LU
        from repro.workloads.lu import _build_lu
        n = int(round((lu.flops_expected * 3 / 2) ** (1 / 3)))
        tpp = _build_lu("tpp-same-n", n, column_tile=1)
        lu_loads = sum(1 for i in lu.program if i.op == "vloadq")
        tpp_loads = sum(1 for i in tpp.program if i.op == "vloadq")
        assert abs(lu.flops_expected - tpp.flops_expected) / \
            lu.flops_expected < 0.2
        assert lu_loads < tpp_loads
