"""KernelBuilder DSL and Program container."""

import pytest

from repro.errors import ProgramError
from repro.isa.builder import KernelBuilder
from repro.isa.program import Program


class TestBuilder:
    def test_generated_operate_methods_exist(self):
        kb = KernelBuilder()
        kb.vvaddt(3, 1, 2)
        kb.vsmulq(4, 3, imm=2)
        kb.vsqrtt(5, 4)
        assert [i.op for i in kb.program] == ["vvaddt", "vsmulq", "vsqrtt"]

    def test_operate_method_operand_order_dest_first(self):
        kb = KernelBuilder()
        instr = kb.vvsubt(7, 1, 2)
        assert (instr.vd, instr.va, instr.vb) == (7, 1, 2)

    def test_vs_requires_scalar(self):
        kb = KernelBuilder()
        with pytest.raises(ProgramError):
            kb.vsaddt(1, 2)

    def test_prefetch_aliases(self):
        kb = KernelBuilder()
        assert kb.vprefetch(1).is_prefetch
        assert kb.vgath_prefetch(2, 1).is_prefetch

    def test_setvm_all_is_two_instructions(self):
        kb = KernelBuilder()
        kb.setvm_all()
        assert [i.op for i in kb.program] == ["vvcmpeq", "setvm"]

    def test_tags_propagate(self):
        kb = KernelBuilder()
        kb.tag("phase1")
        instr = kb.vvaddq(1, 2, 3)
        assert instr.tag == "phase1"

    def test_emit_arbitrary(self):
        kb = KernelBuilder()
        instr = kb.emit("vvmult", va=1, vb=2, vd=3, masked=True)
        assert instr.masked

    def test_build_returns_program(self):
        kb = KernelBuilder("xyz")
        kb.setvl(64)
        prog = kb.build()
        assert isinstance(prog, Program)
        assert prog.name == "xyz"


class TestProgramStats:
    def _program(self):
        kb = KernelBuilder()
        kb.lda(1, 0x1000)
        kb.setvl(128)
        kb.vloadq(1, rb=1)
        kb.vprefetch(1, disp=1024)
        kb.vvaddt(2, 1, 1, masked=True)
        kb.vstoreq(2, rb=1)
        return kb.build()

    def test_counts(self):
        stats = self._program().stats()
        assert stats.total == 6
        assert stats.scalar_instructions == 1
        assert stats.vector_instructions == 5
        # prefetches (loads to v31) are charged separately from real
        # memory traffic, matching the dynamic OperationCounts split
        assert stats.memory_instructions == 2
        assert stats.masked_instructions == 1
        assert stats.prefetches == 1

    def test_prefetch_not_double_counted(self):
        stats = self._program().stats()
        assert stats.memory_instructions + stats.prefetches == 3

    def test_by_group(self):
        stats = self._program().stats()
        assert stats.by_group["SC"] == 1
        assert stats.by_group["SM"] == 3
        assert stats.by_group["VV"] == 1
        assert stats.by_group["VC"] == 1

    def test_static_vector_fraction(self):
        assert self._program().stats().static_vector_fraction == pytest.approx(5 / 6)

    def test_listing_contains_every_instruction(self):
        prog = self._program()
        listing = prog.listing()
        assert len(listing.splitlines()) == len(prog)
        assert "vloadq" in listing

    def test_indexing_and_iteration(self):
        prog = self._program()
        assert prog[0].op == "lda"
        assert len(list(prog)) == len(prog)
