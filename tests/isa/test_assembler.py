"""Text assembler: syntax, binding, round trips, error reporting."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble, disassemble


class TestBasicSyntax:
    def test_operate_dest_last(self):
        prog = assemble("vvaddt v1, v2, v3")
        instr = prog[0]
        assert (instr.va, instr.vb, instr.vd) == (1, 2, 3)

    def test_vs_with_float_immediate(self):
        instr = assemble("vsmult v1, #2.5, v4")[0]
        assert instr.imm == 2.5 and instr.vd == 4

    def test_vs_with_scalar_register(self):
        instr = assemble("vsaddq v1, r7, v2")[0]
        assert instr.ra == 7

    def test_memory_operands(self):
        instr = assemble("vloadq v0, 16(r1)")[0]
        assert (instr.vd, instr.disp, instr.rb) == (0, 16, 1)
        instr = assemble("vstoreq v2, -8(r3)")[0]
        assert (instr.va, instr.disp, instr.rb) == (2, -8, 3)

    def test_gather_scatter(self):
        g = assemble("vgathq v1, v2, 0(r3)")[0]
        assert (g.vd, g.vb, g.rb) == (1, 2, 3)
        s = assemble("vscatq v1, v2, 0(r3)")[0]
        assert (s.va, s.vb, s.rb) == (1, 2, 3)

    def test_masked_qualifier(self):
        instr = assemble("vvaddt v1, v2, v3 /m")[0]
        assert instr.masked

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        ; header comment
        setvl #128   ; trailing comment

        setvs #8
        """)
        assert len(prog) == 2

    def test_hex_immediates(self):
        instr = assemble("lda r1, #0x1000")[0]
        assert instr.imm == 0x1000

    def test_bare_integer_immediate(self):
        instr = assemble("lda r1, 4096")[0]
        assert instr.imm == 4096

    def test_control_ops(self):
        prog = assemble("""
        setvm v8
        viota v3
        vextq v1, #5, r2
        vsumt v4, r6
        drainm
        """)
        assert [i.op for i in prog] == ["setvm", "viota", "vextq",
                                        "vsumt", "drainm"]

    def test_scalar_ops(self):
        prog = assemble("""
        addq r1, #8, r2
        mulq r2, r3, r4
        ldq r5, 0(r1)
        stq r5, 8(r1)
        wh64 0(r2)
        """)
        assert len(prog) == 5
        assert prog[1].rb == 3


class TestErrors:
    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("setvl #1\nbogus v1, v2, v3")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("vvaddt v1, v2")

    def test_wrong_operand_kind(self):
        with pytest.raises(AssemblerError):
            assemble("vvaddt v1, v2, r3")

    def test_bad_token(self):
        with pytest.raises(AssemblerError):
            assemble("vloadq v0, fish(r1)")

    def test_masked_scalar_rejected(self):
        with pytest.raises(Exception):
            assemble("addq r1, #1, r2 /m")


class TestRoundTrip:
    SOURCE = """
    setvl #128
    setvs #8
    lda r1, #65536
    vloadq v0, 0(r1)
    vsmult v0, #3.0, v1
    vvaddt v0, v1, v2
    vstoreq v2, 128(r1) /m
    vgathq v3, v0, 0(r1)
    vscatq v3, v0, 0(r1)
    vsumt v2, r5
    drainm
    """

    def test_disassemble_reassembles_identically(self):
        prog = assemble(self.SOURCE)
        text = disassemble(prog)
        prog2 = assemble(text)
        assert [str(a) for a in prog] == [str(b) for b in prog2]
        for a, b in zip(prog, prog2):
            assert a.op == b.op and a.masked == b.masked
