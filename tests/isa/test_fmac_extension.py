"""The section-5 FMAC extension: vvmaddt / vsmaddt.

The paper: "adding floating point multiply-accumulate units (FMAC) to
Tarantula, this rate could be doubled with very little extra complexity
and power. In contrast, adding FMAC instructions that require an extra
third operand to EV8 would require an expensive rework."  The Vbox gets
them cheaply because the third operand is the destination itself.
"""

import numpy as np

from repro.core.config import tarantula
from repro.core.processor import TarantulaProcessor
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import INSTRUCTION_SET, Instruction


class TestSemantics:
    def test_vvmaddt(self, sim):
        a = np.full(128, 3.0)
        b = np.full(128, 4.0)
        acc = np.full(128, 10.0)
        sim.state.vregs.write(1, a.view(np.uint64))
        sim.state.vregs.write(2, b.view(np.uint64))
        sim.state.vregs.write(3, acc.view(np.uint64))
        sim.step(Instruction("vvmaddt", va=1, vb=2, vd=3))
        out = sim.state.vregs.read(3).view(np.float64)
        np.testing.assert_allclose(out, 22.0)

    def test_vsmaddt_with_immediate(self, sim):
        a = np.full(128, 2.0)
        sim.state.vregs.write(1, a.view(np.uint64))
        sim.step(Instruction("vsmaddt", va=1, imm=5.0, vd=3))
        np.testing.assert_allclose(
            sim.state.vregs.read(3).view(np.float64), 10.0)

    def test_masked_fmac_preserves_inactive(self, sim):
        vm = np.zeros(128, dtype=bool)
        vm[:8] = True
        sim.state.ctrl.set_vm(vm)
        sim.state.vregs.write(1, np.ones(128).view(np.uint64))
        sim.state.vregs.write(3, np.full(128, 7.0).view(np.uint64))
        sim.step(Instruction("vsmaddt", va=1, imm=1.0, vd=3, masked=True))
        out = sim.state.vregs.read(3).view(np.float64)
        assert np.all(out[:8] == 8.0) and np.all(out[8:] == 7.0)

    def test_counts_two_flops_per_element(self, sim):
        sim.state.ctrl.set_vl(100)
        sim.step(Instruction("vvmaddt", va=1, vb=2, vd=3))
        assert sim.counts.flops == 200

    def test_accumulator_is_a_source(self):
        instr = Instruction("vvmaddt", va=1, vb=2, vd=3)
        assert 3 in instr.vreg_reads()
        assert INSTRUCTION_SET["vvmaddt"].reads_dest


class TestFmacDoublesThroughput:
    def _kernel(self, fused: bool):
        kb = KernelBuilder("fmac-study")
        kb.setvl(128)
        for i in range(64):
            acc = 10 + (i % 4)
            if fused:
                kb.vvmaddt(acc, 1, 2)
            else:
                kb.vvmult(9, 1, 2)
                kb.vvaddt(acc, acc, 9)
        return kb.build()

    def test_same_flops_half_the_port_pressure(self):
        """The section-5 claim, measured: same arithmetic, roughly half
        the cycles once ports are the bottleneck."""
        results = {}
        for fused in (True, False):
            proc = TarantulaProcessor(tarantula())
            res = proc.run(self._kernel(fused))
            results[fused] = res
        assert results[True].counts.flops == results[False].counts.flops
        speedup = results[False].cycles / results[True].cycles
        assert speedup > 1.5
