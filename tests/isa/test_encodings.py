"""Binary encoding: explicit cases and refusal paths."""

import pytest

from repro.isa.encodings import EncodingError, FCODES, MAJOR_OPCODE, \
    decode, encode
from repro.isa.instructions import INSTRUCTION_SET, Instruction


class TestEncodeBasics:
    def test_major_opcode_field(self):
        word = encode(Instruction("vvaddt", va=1, vb=2, vd=3))
        assert (word >> 26) & 0x3F == MAJOR_OPCODE

    def test_every_mnemonic_has_a_function_code(self):
        assert set(FCODES) == set(INSTRUCTION_SET)
        assert len(set(FCODES.values())) == len(FCODES)
        assert max(FCODES.values()) < 256

    def test_distinct_instructions_encode_distinctly(self):
        a = encode(Instruction("vvaddt", va=1, vb=2, vd=3))
        b = encode(Instruction("vvaddt", va=1, vb=2, vd=4))
        c = encode(Instruction("vvsubt", va=1, vb=2, vd=3))
        assert len({a, b, c}) == 3

    def test_masked_bit(self):
        plain = encode(Instruction("vvaddt", va=1, vb=2, vd=3))
        masked = encode(Instruction("vvaddt", va=1, vb=2, vd=3, masked=True))
        assert plain != masked
        assert decode(masked).masked


class TestEncodeRefusals:
    def test_large_immediate_refused(self):
        with pytest.raises(EncodingError):
            encode(Instruction("vsaddq", va=1, imm=1000, vd=2))

    def test_float_immediate_refused(self):
        with pytest.raises(EncodingError):
            encode(Instruction("vsaddt", va=1, imm=1.5, vd=2))

    def test_huge_displacement_refused(self):
        with pytest.raises(EncodingError):
            encode(Instruction("vloadq", vd=1, rb=2, disp=4096))

    def test_unaligned_displacement_refused(self):
        with pytest.raises(EncodingError):
            encode(Instruction("ldq", rd=1, rb=2, disp=4))

    def test_indexed_displacement_refused(self):
        with pytest.raises(EncodingError):
            encode(Instruction("vgathq", vd=1, vb=2, rb=3, disp=8))


class TestDecodeRefusals:
    def test_wrong_major_opcode(self):
        with pytest.raises(EncodingError):
            decode(0)

    def test_unknown_function_code(self):
        word = (MAJOR_OPCODE << 26) | (0xFF << 18)
        with pytest.raises(EncodingError):
            decode(word)


class TestExplicitRoundTrips:
    CASES = [
        Instruction("vloadq", vd=5, rb=7, disp=-512),
        Instruction("vloadq", vd=5, rb=7, disp=504),
        Instruction("vstoreq", va=0, rb=31, disp=0),
        Instruction("setvs", ra=9),
        Instruction("vextq", va=4, imm=31, rd=8),
        Instruction("vinsq", ra=2, imm=0, vd=30),
        Instruction("viota", vd=12),
        Instruction("wh64", rb=3, disp=64),
        Instruction("lda", rd=6, imm=16, rb=2),
        Instruction("sll", ra=1, rb=2, rd=3),
    ]

    @pytest.mark.parametrize("instr", CASES, ids=lambda i: str(i))
    def test_round_trip(self, instr):
        back = decode(encode(instr))
        assert str(back) == str(instr)
