"""Instruction table and operand validation."""

import pytest

from repro.errors import ProgramError
from repro.isa.instructions import (
    EXTENSIONS,
    Group,
    INSTRUCTION_SET,
    Instruction,
    TimingClass,
    vector_instruction_count,
)


class TestInstructionSet:
    def test_paper_scale_instruction_count(self):
        """Section 2: ~45 new instructions, not counting data-type
        variations; we count concrete vector mnemonics."""
        assert 40 <= vector_instruction_count() <= 60

    def test_extensions_are_documented(self):
        assert set(EXTENSIONS) == {"viota", "vsumq", "vsumt",
                                   "vvmaddt", "vsmaddt"}

    def test_five_groups_populated(self):
        groups = {d.group for d in INSTRUCTION_SET.values()}
        assert groups == set(Group)

    def test_vv_and_vs_mirror_each_other(self):
        vv = {m[2:] for m, d in INSTRUCTION_SET.items()
              if d.group is Group.VV and "vb" in d.fields}
        vs = {m[2:] for m, d in INSTRUCTION_SET.items()
              if d.group is Group.VS}
        assert vv == vs

    def test_memory_groups(self):
        assert INSTRUCTION_SET["vloadq"].is_load
        assert INSTRUCTION_SET["vstoreq"].is_store
        assert INSTRUCTION_SET["vgathq"].is_indexed
        assert INSTRUCTION_SET["vscatq"].is_indexed
        assert INSTRUCTION_SET["vscatq"].is_store

    def test_fp_ops_count_flops(self):
        assert INSTRUCTION_SET["vvaddt"].flops == 1
        assert INSTRUCTION_SET["vvaddq"].flops == 0
        assert INSTRUCTION_SET["vvdivt"].timing is TimingClass.FP_DIV


class TestOperandValidation:
    def test_unknown_mnemonic(self):
        with pytest.raises(ProgramError):
            Instruction("vfrobnicate", vd=0)

    def test_missing_operand(self):
        with pytest.raises(ProgramError):
            Instruction("vvaddq", va=1, vb=2)  # no vd

    def test_register_range(self):
        with pytest.raises(ProgramError):
            Instruction("vvaddq", va=1, vb=2, vd=32)

    def test_vs_needs_scalar(self):
        with pytest.raises(ProgramError):
            Instruction("vsaddq", va=1, vd=2)
        Instruction("vsaddq", va=1, vd=2, imm=5)
        Instruction("vsaddq", va=1, vd=2, ra=3)

    def test_scalar_ops_cannot_be_masked(self):
        with pytest.raises(ProgramError):
            Instruction("lda", rd=1, imm=0, masked=True)

    def test_scalar_arith_needs_second_source(self):
        with pytest.raises(ProgramError):
            Instruction("addq", ra=1, rd=2)
        Instruction("addq", ra=1, rd=2, imm=4)
        Instruction("addq", ra=1, rd=2, rb=3)


class TestDependenceQueries:
    def test_reads_and_writes(self):
        instr = Instruction("vvaddt", va=1, vb=2, vd=3)
        assert instr.vreg_reads() == (1, 2)
        assert instr.vreg_writes() == (3,)

    def test_v31_excluded(self):
        instr = Instruction("vvaddt", va=31, vb=2, vd=31)
        assert instr.vreg_reads() == (2,)
        assert instr.vreg_writes() == ()

    def test_masked_operate_reads_destination(self):
        instr = Instruction("vvaddt", va=1, vb=2, vd=3, masked=True)
        assert 3 in instr.vreg_reads()

    def test_masked_store_does_not_read_destination_extra(self):
        instr = Instruction("vstoreq", va=2, rb=1, masked=True)
        assert instr.vreg_reads() == (2,)

    def test_prefetch_detection(self):
        assert Instruction("vloadq", vd=31, rb=1).is_prefetch
        assert not Instruction("vloadq", vd=3, rb=1).is_prefetch
        assert Instruction("vgathq", vd=31, vb=2, rb=1).is_prefetch
        # a store to v31 is not a prefetch (v31 is a *source* there)
        assert not Instruction("vstoreq", va=31, rb=1).is_prefetch
