"""Unit tests for the architectural register files."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.isa.registers import (
    MVL,
    ArchState,
    ControlRegisters,
    ScalarRegisterFile,
    VectorRegisterFile,
)


class TestVectorRegisterFile:
    def test_initial_state_is_zero(self):
        vrf = VectorRegisterFile()
        for i in (0, 15, 31):
            assert np.all(vrf.read(i) == 0)

    def test_write_read_roundtrip(self):
        vrf = VectorRegisterFile()
        values = np.arange(MVL, dtype=np.uint64)
        vrf.write(3, values)
        assert np.array_equal(vrf.read(3), values)

    def test_read_returns_copy(self):
        vrf = VectorRegisterFile()
        vrf.write(1, np.ones(MVL, dtype=np.uint64))
        snapshot = vrf.read(1)
        snapshot[:] = 0
        assert np.all(vrf.read(1) == 1)

    def test_v31_reads_zero_and_ignores_writes(self):
        vrf = VectorRegisterFile()
        vrf.write(31, np.full(MVL, 7, dtype=np.uint64))
        assert np.all(vrf.read(31) == 0)

    def test_write_elements_partial(self):
        vrf = VectorRegisterFile()
        vrf.write(2, np.zeros(MVL, dtype=np.uint64))
        vrf.write_elements(2, np.array([0, 5]), np.array([9, 9], dtype=np.uint64))
        reg = vrf.read(2)
        assert reg[0] == 9 and reg[5] == 9 and reg[1] == 0

    def test_bad_index_raises(self):
        vrf = VectorRegisterFile()
        with pytest.raises(ProgramError):
            vrf.read(32)
        with pytest.raises(ProgramError):
            vrf.write(-1, np.zeros(MVL, dtype=np.uint64))

    def test_bad_shape_raises(self):
        vrf = VectorRegisterFile()
        with pytest.raises(ProgramError):
            vrf.write(0, np.zeros(MVL - 1, dtype=np.uint64))


class TestScalarRegisterFile:
    def test_r31_is_zero(self):
        srf = ScalarRegisterFile()
        srf.write(31, 123)
        assert srf.read(31) == 0

    def test_wraps_to_64_bits(self):
        srf = ScalarRegisterFile()
        srf.write(0, 1 << 65)
        assert srf.read(0) == 0
        srf.write(0, -1)
        assert srf.read(0) == (1 << 64) - 1

    def test_bad_index(self):
        srf = ScalarRegisterFile()
        with pytest.raises(ProgramError):
            srf.read(99)


class TestControlRegisters:
    def test_defaults(self):
        ctrl = ControlRegisters()
        assert ctrl.vl == MVL
        assert ctrl.vs == 8
        assert ctrl.vm.all()

    def test_vl_bounds(self):
        ctrl = ControlRegisters()
        ctrl.set_vl(0)
        ctrl.set_vl(MVL)
        with pytest.raises(ProgramError):
            ctrl.set_vl(MVL + 1)
        with pytest.raises(ProgramError):
            ctrl.set_vl(-1)

    def test_vs_signed_64(self):
        ctrl = ControlRegisters()
        ctrl.set_vs(-64)
        assert ctrl.vs == -64
        with pytest.raises(ProgramError):
            ctrl.set_vs(1 << 63)

    def test_vm_copy_semantics(self):
        ctrl = ControlRegisters()
        bits = np.zeros(MVL, dtype=bool)
        ctrl.set_vm(bits)
        bits[:] = True
        assert not ctrl.vm.any()


class TestActiveMask:
    def test_vl_truncates(self):
        state = ArchState()
        state.ctrl.set_vl(10)
        mask = state.active_mask(masked=False)
        assert mask[:10].all() and not mask[10:].any()

    def test_mask_applies_only_when_requested(self):
        state = ArchState()
        vm = np.zeros(MVL, dtype=bool)
        vm[::2] = True
        state.ctrl.set_vm(vm)
        state.ctrl.set_vl(8)
        unmasked = state.active_mask(masked=False)
        masked = state.active_mask(masked=True)
        assert unmasked[:8].all()
        assert masked[:8].sum() == 4
