"""Per-operation semantics coverage beyond the Figure-1 examples."""

import numpy as np
import pytest

from repro.isa.instructions import Instruction
from repro.isa.semantics import bits_to_float, float_to_bits


def _f(sim, reg):
    return sim.state.vregs.read(reg).view(np.float64)


def _setup_ints(sim, reg, values):
    data = np.zeros(128, dtype=np.uint64)
    data[:len(values)] = np.array(values, dtype=np.uint64)
    sim.state.vregs.write(reg, data)


class TestIntegerOps:
    def test_wraparound_add(self, sim):
        _setup_ints(sim, 1, [(1 << 64) - 1])
        sim.step(Instruction("vsaddq", va=1, imm=1, vd=2))
        assert sim.state.vregs.read(2)[0] == 0

    def test_logicals(self, sim):
        _setup_ints(sim, 1, [0b1100])
        _setup_ints(sim, 2, [0b1010])
        sim.step(Instruction("vvand", va=1, vb=2, vd=3))
        sim.step(Instruction("vvbis", va=1, vb=2, vd=4))
        sim.step(Instruction("vvxor", va=1, vb=2, vd=5))
        assert sim.state.vregs.read(3)[0] == 0b1000
        assert sim.state.vregs.read(4)[0] == 0b1110
        assert sim.state.vregs.read(5)[0] == 0b0110

    def test_shifts(self, sim):
        _setup_ints(sim, 1, [1])
        sim.step(Instruction("vssll", va=1, imm=3, vd=2))
        assert sim.state.vregs.read(2)[0] == 8
        sim.step(Instruction("vssrl", va=2, imm=2, vd=3))
        assert sim.state.vregs.read(3)[0] == 2

    def test_arithmetic_shift_sign_extends(self, sim):
        _setup_ints(sim, 1, [(1 << 64) - 16])  # -16
        sim.step(Instruction("vssra", va=1, imm=2, vd=2))
        assert sim.state.vregs.read(2)[0] == (1 << 64) - 4  # -4

    def test_compares_produce_0_and_1(self, sim):
        _setup_ints(sim, 1, [5, 7])
        sim.step(Instruction("vscmpeq", va=1, imm=5, vd=2))
        out = sim.state.vregs.read(2)
        assert out[0] == 1 and out[1] == 0

    def test_signed_compare(self, sim):
        _setup_ints(sim, 1, [(1 << 64) - 1])  # -1 signed
        sim.step(Instruction("vscmplt", va=1, imm=0, vd=2))
        assert sim.state.vregs.read(2)[0] == 1

    def test_vnot(self, sim):
        _setup_ints(sim, 1, [0])
        sim.step(Instruction("vnot", va=1, vd=2))
        assert sim.state.vregs.read(2)[0] == (1 << 64) - 1


class TestFloatOps:
    def test_divide(self, sim):
        sim.state.vregs.write(1, np.full(128, 10.0).view(np.uint64))
        sim.step(Instruction("vsdivt", va=1, imm=4.0, vd=2))
        np.testing.assert_allclose(_f(sim, 2), 2.5)

    def test_sqrt(self, sim):
        sim.state.vregs.write(1, np.full(128, 9.0).view(np.uint64))
        sim.step(Instruction("vsqrtt", va=1, vd=2))
        np.testing.assert_allclose(_f(sim, 2), 3.0)

    def test_min_max(self, sim):
        sim.state.vregs.write(1, np.full(128, 2.0).view(np.uint64))
        sim.state.vregs.write(2, np.full(128, -3.0).view(np.uint64))
        sim.step(Instruction("vvmaxt", va=1, vb=2, vd=3))
        sim.step(Instruction("vvmint", va=1, vb=2, vd=4))
        assert _f(sim, 3)[0] == 2.0
        assert _f(sim, 4)[0] == -3.0

    def test_conversions_roundtrip(self, sim):
        _setup_ints(sim, 1, [42])
        sim.step(Instruction("vcvtqt", va=1, vd=2))
        assert _f(sim, 2)[0] == 42.0
        sim.step(Instruction("vcvttq", va=2, vd=3))
        assert sim.state.vregs.read(3)[0] == 42

    def test_cvttq_truncates_toward_zero(self, sim):
        sim.state.vregs.write(1, np.full(128, -2.7).view(np.uint64))
        sim.step(Instruction("vcvttq", va=1, vd=2))
        assert sim.state.vregs.read(2).view(np.int64)[0] == -2

    def test_fp_compare(self, sim):
        sim.state.vregs.write(1, np.full(128, 1.5).view(np.uint64))
        sim.step(Instruction("vscmptlt", va=1, imm=2.0, vd=2))
        assert sim.state.vregs.read(2)[0] == 1


class TestMaskIdiom:
    def test_paper_mask_pipeline(self, sim):
        """Section 2's idiom: compares feed a full vector register, then
        setvm — no scalar round trip."""
        a = np.zeros(128)
        a[::2] = 3.0
        sim.state.vregs.write(1, a.view(np.uint64))
        sim.step(Instruction("vscmpteq", va=1, imm=3.0, vd=6))
        sim.step(Instruction("setvm", va=6))
        assert sim.state.ctrl.vm[::2].all()
        assert not sim.state.ctrl.vm[1::2].any()

    def test_masked_merge_preserves_dest(self, sim):
        vm = np.zeros(128, dtype=bool)
        vm[:4] = True
        sim.state.ctrl.set_vm(vm)
        sim.state.vregs.write(3, np.full(128, 9, dtype=np.uint64))
        sim.step(Instruction("vsaddq", va=31, imm=1, vd=3, masked=True))
        out = sim.state.vregs.read(3)
        assert np.all(out[:4] == 1) and np.all(out[4:] == 9)


class TestControlOps:
    def test_vextq_vinsq(self, sim):
        _setup_ints(sim, 1, [10, 20, 30])
        sim.step(Instruction("vextq", va=1, imm=2, rd=5))
        assert sim.state.sregs.read(5) == 30
        sim.step(Instruction("vinsq", ra=5, imm=7, vd=2))
        assert sim.state.vregs.read(2)[7] == 30

    def test_viota(self, sim):
        sim.step(Instruction("viota", vd=1))
        assert np.array_equal(sim.state.vregs.read(1),
                              np.arange(128, dtype=np.uint64))

    def test_vsumq_respects_vl(self, sim):
        _setup_ints(sim, 1, [1] * 128)
        sim.state.vregs.write(1, np.ones(128, dtype=np.uint64))
        sim.state.ctrl.set_vl(10)
        sim.step(Instruction("vsumq", va=1, rd=2))
        assert sim.state.sregs.read(2) == 10

    def test_vsumt(self, sim):
        sim.state.vregs.write(1, np.full(128, 0.5).view(np.uint64))
        sim.step(Instruction("vsumt", va=1, rd=2))
        assert bits_to_float(sim.state.sregs.read(2)) == pytest.approx(64.0)

    def test_setvl_clamps(self, sim):
        sim.step(Instruction("setvl", imm=1000))
        assert sim.state.ctrl.vl == 128

    def test_setvs_negative(self, sim):
        sim.step(Instruction("setvs", imm=-24))
        assert sim.state.ctrl.vs == -24


class TestScalarOps:
    def test_lda_float_materializes_bits(self, sim):
        sim.step(Instruction("lda", rd=1, imm=2.5))
        assert sim.state.sregs.read(1) == float_to_bits(2.5)

    def test_lda_with_base(self, sim):
        sim.state.sregs.write(2, 100)
        sim.step(Instruction("lda", rd=1, imm=28, rb=2))
        assert sim.state.sregs.read(1) == 128

    def test_scalar_arith(self, sim):
        sim.state.sregs.write(1, 6)
        sim.step(Instruction("mulq", ra=1, imm=7, rd=2))
        assert sim.state.sregs.read(2) == 42
        sim.step(Instruction("sll", ra=2, imm=1, rd=3))
        assert sim.state.sregs.read(3) == 84

    def test_ldq_stq(self, sim):
        sim.state.sregs.write(1, 0x9000)
        sim.state.sregs.write(2, 1234)
        sim.step(Instruction("stq", ra=2, rb=1, disp=8))
        sim.step(Instruction("ldq", rd=3, rb=1, disp=8))
        assert sim.state.sregs.read(3) == 1234
