"""Figure 1 semantics, executable: VVADDQ, VSMULQ (as VSMULO in the OCR),
VLOADQ and VSCATQ behave exactly as the paper's pseudo-code.

These tests drive instructions directly through the functional
simulator, covering each of the four major instruction groups.
"""

import numpy as np

from repro.core.functional import FunctionalSimulator
from repro.isa.instructions import Instruction
from repro.isa.semantics import float_to_bits

BASE_A = 0x1_0000
BASE_B = 0x2_0000


def _floats(sim, reg):
    return sim.state.vregs.read(reg).view(np.float64)


class TestVVGroup:
    def test_vvaddq_adds_below_vl(self, sim):
        a = np.arange(128, dtype=np.uint64)
        b = np.full(128, 5, dtype=np.uint64)
        sim.state.vregs.write(1, a)
        sim.state.vregs.write(2, b)
        sim.state.ctrl.set_vl(100)
        sim.step(Instruction("vvaddq", va=1, vb=2, vd=3))
        out = sim.state.vregs.read(3)
        assert np.array_equal(out[:100], a[:100] + 5)

    def test_vvaddq_tail_preserved_by_default(self, sim):
        sim.state.vregs.write(3, np.full(128, 77, dtype=np.uint64))
        sim.state.ctrl.set_vl(4)
        sim.step(Instruction("vvaddq", va=1, vb=2, vd=3))
        assert np.all(sim.state.vregs.read(3)[4:] == 77)

    def test_vvaddq_tail_poisoned_when_enabled(self):
        sim = FunctionalSimulator(poison_tail=True)
        sim.state.ctrl.set_vl(4)
        sim.step(Instruction("vvaddq", va=1, vb=2, vd=3))
        tail = sim.state.vregs.read(3)[4:]
        assert np.all(tail == np.uint64(0xDEAD_BEEF_DEAD_BEEF))

    def test_vvmult_fp(self, sim):
        a = np.linspace(0.0, 2.0, 128)
        b = np.full(128, 4.0)
        sim.state.vregs.write(1, a.view(np.uint64))
        sim.state.vregs.write(2, b.view(np.uint64))
        sim.step(Instruction("vvmult", va=1, vb=2, vd=3))
        np.testing.assert_allclose(_floats(sim, 3), a * 4.0)


class TestVSGroup:
    def test_vsmulq_immediate(self, sim):
        a = np.arange(128, dtype=np.uint64)
        sim.state.vregs.write(4, a)
        sim.step(Instruction("vsmulq", va=4, imm=3, vd=5))
        assert np.array_equal(sim.state.vregs.read(5), a * 3)

    def test_vsmult_scalar_register_holds_fp_bits(self, sim):
        a = np.full(128, 2.0)
        sim.state.vregs.write(4, a.view(np.uint64))
        sim.state.sregs.write(7, float_to_bits(2.5))
        sim.step(Instruction("vsmult", va=4, ra=7, vd=5))
        np.testing.assert_allclose(_floats(sim, 5), 5.0)

    def test_vsaddt_float_immediate(self, sim):
        a = np.full(128, 1.0)
        sim.state.vregs.write(4, a.view(np.uint64))
        sim.step(Instruction("vsaddt", va=4, imm=0.5, vd=5))
        np.testing.assert_allclose(_floats(sim, 5), 1.5)


class TestSMGroup:
    def test_vloadq_unit_stride(self, sim):
        data = np.arange(128, dtype=np.uint64)
        sim.memory.write_array(BASE_A, data)
        sim.state.sregs.write(1, BASE_A)
        sim.step(Instruction("setvs", imm=8))
        sim.step(Instruction("vloadq", vd=2, rb=1))
        assert np.array_equal(sim.state.vregs.read(2), data)

    def test_vloadq_strided(self, sim):
        data = np.arange(1024, dtype=np.uint64)
        sim.memory.write_array(BASE_A, data)
        sim.state.sregs.write(1, BASE_A)
        sim.step(Instruction("setvs", imm=64))  # every 8th quadword
        sim.step(Instruction("vloadq", vd=2, rb=1))
        assert np.array_equal(sim.state.vregs.read(2), data[::8])

    def test_vloadq_negative_stride(self, sim):
        data = np.arange(256, dtype=np.uint64)
        sim.memory.write_array(BASE_A, data)
        sim.state.sregs.write(1, BASE_A + 255 * 8)
        sim.step(Instruction("setvs", imm=-8))
        sim.step(Instruction("vloadq", vd=2, rb=1))
        assert np.array_equal(sim.state.vregs.read(2), data[255:127:-1])

    def test_vstoreq_with_displacement(self, sim):
        values = np.arange(128, dtype=np.uint64)
        sim.state.vregs.write(2, values)
        sim.state.sregs.write(1, BASE_B)
        sim.step(Instruction("setvs", imm=8))
        sim.step(Instruction("vstoreq", va=2, rb=1, disp=16))
        assert np.array_equal(sim.memory.read_array(BASE_B + 16, 128), values)

    def test_vloadq_respects_vl(self, sim):
        sim.memory.write_array(BASE_A, np.ones(128, dtype=np.uint64))
        sim.state.sregs.write(1, BASE_A)
        sim.state.ctrl.set_vl(5)
        sim.step(Instruction("vloadq", vd=2, rb=1))
        out = sim.state.vregs.read(2)
        assert np.all(out[:5] == 1) and np.all(out[5:] == 0)

    def test_masked_store_skips_inactive(self, sim):
        vm = np.zeros(128, dtype=bool)
        vm[::2] = True
        sim.state.ctrl.set_vm(vm)
        sim.state.vregs.write(2, np.full(128, 9, dtype=np.uint64))
        sim.memory.write_array(BASE_B, np.zeros(128, dtype=np.uint64))
        sim.state.sregs.write(1, BASE_B)
        sim.step(Instruction("vstoreq", va=2, rb=1, masked=True))
        out = sim.memory.read_array(BASE_B, 128)
        assert np.all(out[::2] == 9) and np.all(out[1::2] == 0)


class TestRMGroup:
    def test_vgathq_matches_figure1(self, sim):
        """Vc[i] = MEM[Va[i] + Rb] for i < vl, any requesting order."""
        table = np.arange(1000, dtype=np.uint64) * 7
        sim.memory.write_array(BASE_A, table)
        rng = np.random.default_rng(1)
        index_bytes = (rng.integers(0, 1000, 128) * 8).astype(np.uint64)
        sim.state.vregs.write(1, index_bytes)
        sim.state.sregs.write(2, BASE_A)
        sim.step(Instruction("vgathq", vb=1, rb=2, vd=3))
        expected = table[index_bytes // 8]
        assert np.array_equal(sim.state.vregs.read(3), expected)

    def test_vscatq_matches_figure1(self, sim):
        sim.state.sregs.write(2, BASE_B)
        values = np.arange(128, dtype=np.uint64) + 100
        offsets = (np.arange(128, dtype=np.uint64)[::-1] * 8)
        sim.state.vregs.write(1, offsets.copy())
        sim.state.vregs.write(3, values)
        sim.step(Instruction("vscatq", va=3, vb=1, rb=2))
        out = sim.memory.read_array(BASE_B, 128)
        assert np.array_equal(out, values[::-1])

    def test_scatter_respects_vl(self, sim):
        sim.state.sregs.write(2, BASE_B)
        sim.state.vregs.write(1, np.arange(128, dtype=np.uint64) * 8)
        sim.state.vregs.write(3, np.ones(128, dtype=np.uint64))
        sim.state.ctrl.set_vl(3)
        sim.step(Instruction("vscatq", va=3, vb=1, rb=2))
        out = sim.memory.read_array(BASE_B, 128)
        assert out[:3].sum() == 3 and out[3:].sum() == 0

    def test_gather_prefetch_has_no_architectural_effect(self, sim):
        sim.state.sregs.write(2, BASE_A)
        sim.state.vregs.write(1, np.zeros(128, dtype=np.uint64))
        before = sim.state.vregs.read(31)
        sim.step(Instruction("vgathq", vb=1, rb=2, vd=31))
        assert np.array_equal(sim.state.vregs.read(31), before)
        assert sim.counts.prefetch_elements == 128
