"""Tests for the simulation job server (repro.serve)."""
