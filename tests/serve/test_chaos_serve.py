"""The serve-layer chaos oracle and its CLI gate."""

import pytest

from repro.cli import main
from repro.faults.chaos_serve import ServeChaosResult, _spec_json
from repro.harness.engine import STATS, ExperimentSpec
from repro.serve.jobs import spec_from_json


@pytest.fixture(autouse=True)
def _reset_stats():
    STATS.reset()
    yield
    STATS.reset()


class TestSpecJsonRoundTrip:
    def test_oracle_json_reproduces_the_spec_exactly(self):
        # admission-side digests equal oracle-side digests only if the
        # JSON round-trips to an identical (hashable) spec
        spec = ExperimentSpec("streams.copy", "T", 0.05,
                              overrides=(("maf_entries", 16),),
                              check=True, warm=False)
        assert spec_from_json(_spec_json(spec)) == spec


def _passing_kwargs():
    return dict(
        suite="table4", seed=1, cells=6, jobs=2, duplicates=3,
        queue_limit=4, identical=True, mismatched=0, accepted=6,
        deduped=9, cached=3, rejected_429=5, retry_after_ok=True,
        rejections_expected=True, malformed_ok=7, malformed_total=7,
        exec_misses=6, exec_stores=6, quarantined=0, tmp_debris=0,
        corrupt=0, cache_intact=True, drain_exit=0, drain_intact=True,
        drain_lost=0)


class TestServeChaosResult:
    def test_passing_drill_is_ok(self):
        assert ServeChaosResult(**_passing_kwargs()).ok

    @pytest.mark.parametrize("field, value", [
        ("identical", False),
        ("exec_misses", 7),            # a duplicate simulated twice
        ("exec_stores", 5),            # a result silently dropped
        ("quarantined", 1),
        ("tmp_debris", 1),
        ("corrupt", 1),
        ("cache_intact", False),
        ("malformed_ok", 6),           # one malformed body got through
        ("rejected_429", 0),           # full queue never said no
        ("retry_after_ok", False),
        ("drain_exit", 1),
        ("drain_intact", False),
        ("drain_lost", 2),
    ])
    def test_each_violation_fails_the_gate(self, field, value):
        kwargs = {**_passing_kwargs(), field: value}
        result = ServeChaosResult(**kwargs)
        assert not result.ok, field
        assert "FAILED" in result.summary()

    def test_429s_not_required_when_hang_was_suppressed(self):
        kwargs = {**_passing_kwargs(), "rejections_expected": False,
                  "rejected_429": 0}
        assert ServeChaosResult(**kwargs).ok

    def test_skipped_drain_drill_is_not_a_failure(self):
        kwargs = {**_passing_kwargs(), "drain_exit": None,
                  "drain_intact": None}
        assert ServeChaosResult(**kwargs).ok

    def test_summary_carries_the_accounting(self):
        text = ServeChaosResult(**_passing_kwargs()).summary()
        assert "exactly-once" in text
        assert "drain drill" in text
        assert "OK" in text


class TestServeChaosGate:
    """The CI acceptance gate, driven through the real CLI path."""

    def test_cli_gate_passes_and_writes_log(self, tmp_path, capsys):
        log = tmp_path / "chaos-serve.txt"
        rc = main(["chaos", "--layer", "serve", "--seed", "1234",
                   "--quick", "--jobs", "2", "--timeout", "3",
                   "--log", str(log)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "payload bytes: identical" in out
        assert "exactly-once" in out
        assert log.read_text().strip().endswith(
            "serve-layer faults are invisible in the payload bytes")
