"""Job model, spec validation and the bounded fair queue."""

import math

import pytest

from repro.harness.engine import CellFailure, ExperimentSpec, execute
from repro.serve.jobs import (
    Job,
    JobQueue,
    ServeError,
    outcome_payload,
    spec_from_json,
)


def make_job(jid, tenant="t", kernel="streams.copy", priority=0,
             deadline=None):
    spec = ExperimentSpec(kernel=kernel, config="T", scale=0.02)
    return Job(id=jid, tenant=tenant, spec=spec, digest=f"d-{jid}",
               priority=priority, deadline=deadline)


class TestSpecFromJson:
    def test_minimal_spec_round_trips(self):
        spec = spec_from_json({"kernel": "streams.copy"})
        assert spec == ExperimentSpec(kernel="streams.copy")

    def test_full_spec_round_trips(self):
        obj = {"kernel": "streams.copy", "config": "EV8", "scale": 0.5,
               "overrides": {"maf_entries": 16}, "check": False,
               "warm": False, "mode": "auto"}
        spec = spec_from_json(obj)
        assert spec.config == "EV8"
        assert spec.scale == 0.5
        assert spec.overrides == (("maf_entries", 16),)
        assert not spec.check and not spec.warm

    @pytest.mark.parametrize("obj, fragment", [
        ("not a dict", "JSON object"),
        ([1, 2], "JSON object"),
        ({}, "missing the required 'kernel'"),
        ({"kernel": 7}, "'kernel' must be a string"),
        ({"kernel": "streams.copy", "frobnicate": 1}, "unknown spec field"),
        ({"kernel": "streams.copy", "scale": 0}, "positive finite"),
        ({"kernel": "streams.copy", "scale": -2}, "positive finite"),
        ({"kernel": "streams.copy", "scale": True}, "positive finite"),
        ({"kernel": "streams.copy", "scale": float("nan")},
         "positive finite"),
        ({"kernel": "streams.copy", "overrides": [1]}, "'overrides'"),
        ({"kernel": "streams.copy", "check": "yes"}, "boolean"),
        ({"kernel": "streams.copy", "fault": ["site"]}, "pair"),
    ])
    def test_rejections_are_400s(self, obj, fragment):
        with pytest.raises(ServeError) as err:
            spec_from_json(obj)
        assert err.value.status == 400
        assert fragment in err.value.message

    def test_unknown_kernel_suggests_spelling(self):
        with pytest.raises(ServeError) as err:
            spec_from_json({"kernel": "strems.copy"})
        assert err.value.status == 400
        assert "streams.copy" in err.value.message

    def test_nan_scale_never_reaches_the_spec(self):
        for bad in (float("inf"), -float("inf")):
            with pytest.raises(ServeError):
                spec_from_json({"kernel": "streams.copy", "scale": bad})


class TestOutcomePayload:
    def test_success_payload_is_stable_and_json_safe(self):
        import json

        outcome = execute(ExperimentSpec("streams.copy", "T", 0.02))
        a = json.dumps(outcome_payload(outcome), sort_keys=True)
        b = json.dumps(outcome_payload(outcome), sort_keys=True)
        assert a == b
        payload = outcome_payload(outcome)
        assert payload["failed"] is False
        assert payload["kernel"] == "streams.copy"
        assert payload["cycles"] > 0
        assert payload["verified"] is True

    def test_failure_payload_keeps_the_cellfailure_shape(self):
        failure = CellFailure(
            spec=ExperimentSpec("streams.copy", "T", 0.02),
            error_type="Timeout", message="budget exceeded",
            traceback_text="tb", attempts=2)
        payload = outcome_payload(failure)
        assert payload == {
            "failed": True, "kernel": "streams.copy", "config": "T",
            "error_type": "Timeout", "message": "budget exceeded",
            "trap_pc": None, "attempts": 2}


class TestJobQueue:
    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError, match="positive"):
            JobQueue(0)

    def test_bounded_offer(self):
        q = JobQueue(2)
        assert q.offer(make_job("a"))
        assert q.offer(make_job("b"))
        assert not q.offer(make_job("c"))
        assert len(q) == 2

    def test_fifo_within_one_tenant(self):
        q = JobQueue(8)
        for jid in ("a", "b", "c"):
            q.offer(make_job(jid))
        assert [j.id for j in q.take_batch(8)] == ["a", "b", "c"]
        assert len(q) == 0

    def test_priority_order_within_a_tenant(self):
        q = JobQueue(8)
        q.offer(make_job("low", priority=-5))
        q.offer(make_job("high", priority=5))
        q.offer(make_job("mid", priority=0))
        assert [j.id for j in q.take_batch(8)] == ["high", "mid", "low"]

    def test_round_robin_across_tenants(self):
        # one tenant's sweep cannot starve another's single request
        q = JobQueue(16)
        for i in range(4):
            q.offer(make_job(f"big{i}", tenant="big"))
        q.offer(make_job("small0", tenant="small"))
        batch = q.take_batch(3)
        assert {j.tenant for j in batch} == {"big", "small"}

    def test_take_batch_timeout_returns_empty(self):
        import time

        q = JobQueue(2)
        t0 = time.monotonic()
        assert q.take_batch(4, timeout=0.05) == []
        assert time.monotonic() - t0 < 1.0

    def test_remove_expired_pops_only_past_deadlines(self):
        q = JobQueue(8)
        q.offer(make_job("stale", deadline=10.0))
        q.offer(make_job("fresh", deadline=1000.0))
        q.offer(make_job("eternal"))
        expired = q.remove_expired(now=100.0)
        assert [j.id for j in expired] == ["stale"]
        assert len(q) == 2
        assert {j.id for j in q.take_batch(8)} == {"fresh", "eternal"}

    def test_depths_reports_per_tenant(self):
        q = JobQueue(8)
        q.offer(make_job("a", tenant="x"))
        q.offer(make_job("b", tenant="x"))
        q.offer(make_job("c", tenant="y"))
        assert q.depths() == {"x": 2, "y": 1}


class TestJobModel:
    def test_done_states(self):
        job = make_job("j")
        assert not job.done
        for state in ("done", "failed", "expired"):
            job.state = state
            assert job.done

    def test_describe_includes_payload_only_when_present(self):
        job = make_job("j")
        assert "result" not in job.describe()
        job.payload = {"failed": False}
        assert job.describe()["result"] == {"failed": False}
