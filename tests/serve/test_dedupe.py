"""The in-flight dedupe window: attach, register, resolve."""

import pytest

from repro.harness.engine import ExperimentSpec
from repro.serve.dedupe import InFlightDedupe
from repro.serve.jobs import Job


def job(jid, digest):
    return Job(id=jid, tenant="t", digest=digest,
               spec=ExperimentSpec("streams.copy", "T", 0.02))


class TestInFlightDedupe:
    def test_miss_then_register_then_hit(self):
        d = InFlightDedupe()
        assert d.attach("abc") is None
        first = job("j1", "abc")
        d.register(first)
        assert d.attach("abc") is first
        assert d.shared == 1
        assert len(d) == 1

    def test_resolve_reopens_the_digest(self):
        d = InFlightDedupe()
        first = job("j1", "abc")
        d.register(first)
        d.resolve(first)
        assert d.attach("abc") is None
        assert len(d) == 0

    def test_double_register_is_a_bug(self):
        d = InFlightDedupe()
        d.register(job("j1", "abc"))
        with pytest.raises(AssertionError):
            d.register(job("j2", "abc"))

    def test_resolve_tolerates_stale_and_unknown_jobs(self):
        d = InFlightDedupe()
        live = job("j1", "abc")
        d.register(live)
        d.resolve(job("j0", "abc"))        # stale twin: must not evict
        assert d.attach("abc") is live
        d.resolve(job("jx", "nope"))       # never registered: no-op
        d.resolve(live)
        d.resolve(live)                    # double resolve: no-op

    def test_distinct_digests_are_independent(self):
        d = InFlightDedupe()
        a, b = job("ja", "aa"), job("jb", "bb")
        d.register(a)
        d.register(b)
        assert d.attach("aa") is a
        assert d.attach("bb") is b
        d.resolve(a)
        assert d.attach("aa") is None
        assert d.attach("bb") is b
