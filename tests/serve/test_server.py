"""The live server: admission, dedupe, degradation, drain — in-process.

Every test runs a real :class:`ServerThread` (real sockets, real HTTP)
with a **gated** serial pool injected where determinism needs it: the
gate wedges the executor thread at a known point so tests can observe
the in-flight dedupe window, a genuinely full queue and the draining
state without racing the simulator.
"""

import json
import threading
import time

import pytest

from repro.harness.engine import STATS, ExperimentSpec, execute
from repro.harness.pool import SerialPool
from repro.serve.client import ServeClient
from repro.serve.jobs import outcome_payload
from repro.serve.server import ServeConfig, ServerThread

SCALE = 0.02
COPY = {"kernel": "streams.copy", "config": "T", "scale": SCALE}
ADD = {"kernel": "streams.add", "config": "T", "scale": SCALE}
TRIAD = {"kernel": "streams.triad", "config": "T", "scale": SCALE}


@pytest.fixture(autouse=True)
def _reset_stats():
    STATS.reset()
    yield
    STATS.reset()


class GatedSerialPool(SerialPool):
    """A serial pool whose ``submit`` blocks until the gate opens —
    pins the executor thread mid-batch on demand."""

    def __init__(self, gate: threading.Event) -> None:
        super().__init__()
        self.gate = gate

    def submit(self, fn, *args):
        self.gate.wait(timeout=30)
        return super().submit(fn, *args)


def make_server(tmp_path, gate=None, **overrides):
    kwargs = dict(port=0, jobs=1, batch_max=1,
                  cache_dir=str(tmp_path / "cache"))
    kwargs.update(overrides)
    factory = (lambda: GatedSerialPool(gate)) if gate is not None else None
    return ServerThread(ServeConfig(**kwargs), pool_factory=factory)


def client_of(st: ServerThread) -> ServeClient:
    return ServeClient(st.server.host, st.server.port)


class TestRoundTrip:
    def test_result_matches_direct_execute(self, tmp_path):
        reference = outcome_payload(
            execute(ExperimentSpec("streams.copy", "T", SCALE)))
        with make_server(tmp_path) as st, client_of(st) as client:
            entry = client.submit(COPY)
            payload = client.wait_result(entry["id"], timeout=120)
        assert json.dumps(payload, sort_keys=True) \
            == json.dumps(reference, sort_keys=True)

    def test_second_submission_is_a_cache_hit(self, tmp_path):
        with make_server(tmp_path) as st, client_of(st) as client:
            first = client.submit(COPY)
            client.wait_result(first["id"], timeout=120)
            second = client.submit(COPY)
            assert second.get("cached") is True
            assert second["digest"] == first["digest"]
            # a cached admission is complete immediately
            assert client.job(second["id"])["state"] == "done"

    def test_healthz_and_stats_shape(self, tmp_path):
        with make_server(tmp_path) as st, client_of(st) as client:
            health = client.healthz()
            assert health["ok"] is True and health["draining"] is False
            stats = client.stats()
            assert stats["queue"]["limit"] == 256
            assert "engine" in stats and "serve" in stats
            assert stats["cache"]["execute"]["stores"] == 0


class TestDedupe:
    def test_concurrent_duplicates_share_one_job(self, tmp_path):
        gate = threading.Event()
        with make_server(tmp_path, gate=gate) as st, \
                client_of(st) as client:
            first = client.submit(COPY)
            dup = client.submit(COPY)          # executor is gated: live
            assert dup.get("deduped") is True
            assert dup["id"] == first["id"]
            gate.set()
            payload = client.wait_result(first["id"], timeout=120)
            assert payload["failed"] is False
            stats = client.stats()
            assert stats["serve"]["deduped"] == 1
            assert stats["cache"]["execute"]["stores"] == 1


class TestAdmissionControl:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        gate = threading.Event()
        with make_server(tmp_path, gate=gate, queue_limit=1) as st, \
                client_of(st) as client:
            client.submit(COPY)                # taken by the executor
            taken = False
            for _ in range(100):               # until the batch is taken
                if client.healthz()["queued"] == 0:
                    taken = True
                    break
                time.sleep(0.02)
            assert taken
            client.submit(ADD)                 # fills the 1-slot queue
            status, headers, payload = client.raw_request(
                "POST", "/jobs", json.dumps(TRIAD).encode())
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert payload["rejected"] == 1
            gate.set()

    def test_batch_envelope_and_oversized_batch(self, tmp_path):
        with make_server(tmp_path, max_batch_specs=2) as st, \
                client_of(st) as client:
            response = client.submit_batch([COPY, ADD])
            assert len(response["jobs"]) == 2
            status, _h, _p = client.raw_request(
                "POST", "/jobs",
                json.dumps({"specs": [COPY, ADD, TRIAD]}).encode())
            assert status == 413

    def test_invalid_tenant_priority_deadline(self, tmp_path):
        with make_server(tmp_path) as st, client_of(st) as client:
            for envelope in (
                    {"specs": [COPY], "tenant": ""},
                    {"specs": [COPY], "tenant": 7},
                    {"specs": [COPY], "priority": "high"},
                    {"specs": [COPY], "priority": True},
                    {"specs": [COPY], "deadline_s": -1},
                    {"specs": [COPY], "deadline_s": "soon"}):
                status, _h, _p = client.raw_request(
                    "POST", "/jobs", json.dumps(envelope).encode())
                assert status == 400, envelope


class TestMalformedLoad:
    @pytest.mark.parametrize("body", [
        b"{definitely not json",
        json.dumps({"kernel": "strems.copy"}).encode(),
        json.dumps({"kernel": "streams.copy", "scale": -1}).encode(),
        json.dumps({"kernel": "streams.copy", "config": "ZZZ"}).encode(),
        json.dumps([1, 2, 3]).encode(),
        json.dumps({"specs": []}).encode(),
    ])
    def test_each_400s_and_server_stays_up(self, tmp_path, body):
        with make_server(tmp_path) as st, client_of(st) as client:
            status, _h, payload = client.raw_request("POST", "/jobs", body)
            assert status == 400
            assert "error" in payload
            assert client.healthz()["ok"] is True

    def test_unknown_endpoint_and_method(self, tmp_path):
        with make_server(tmp_path) as st, client_of(st) as client:
            status, _h, _p = client.raw_request("GET", "/nope")
            assert status == 404
            status, _h, _p = client.raw_request("DELETE", "/jobs")
            assert status == 405
            status, _h, _p = client.raw_request("GET", "/jobs/j999")
            assert status == 404

    def test_oversized_body_is_413(self, tmp_path):
        with make_server(tmp_path, max_body_bytes=64) as st, \
                client_of(st) as client:
            status, _h, _p = client.raw_request(
                "POST", "/jobs", b"x" * 128)
            assert status == 413


class TestDeadlines:
    def test_queued_job_expires_into_structured_timeout(self, tmp_path):
        gate = threading.Event()
        with make_server(tmp_path, gate=gate) as st, \
                client_of(st) as client:
            client.submit(COPY)                # wedges the executor
            response = client.submit_batch([ADD], deadline_s=0.05)
            job_id = response["jobs"][0]["id"]
            payload = client.wait_result(job_id, timeout=30)
            assert payload["failed"] is True
            assert payload["error_type"] == "Timeout"
            assert "deadline" in payload["message"]
            assert client.job(job_id)["state"] == "expired"
            gate.set()


class TestDrain:
    def test_drain_finishes_accepted_work_then_rejects_new(self, tmp_path):
        gate = threading.Event()
        st = make_server(tmp_path, gate=gate).start()
        try:
            with client_of(st) as client:
                client.submit(COPY)            # accepted, then wedged
                st._loop.call_soon_threadsafe(st.server.begin_drain)
                draining = False
                for _ in range(200):
                    if client.healthz()["draining"]:
                        draining = True
                        break
                    time.sleep(0.02)
                assert draining
                status, _h, _p = client.raw_request(
                    "POST", "/jobs", json.dumps(ADD).encode())
                assert status == 503
        finally:
            gate.set()                         # let the wedged batch run
            st.drain()
        # the accepted job's result survived to the cache
        from repro.harness.engine import ResultCache, cache_key

        cache = ResultCache(tmp_path / "cache")
        spec = ExperimentSpec("streams.copy", "T", SCALE)
        assert cache.get(cache_key(spec)) is not None
