"""Documentation invariants: the generated ISA manual stays in sync."""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def test_isa_manual_matches_instruction_table():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "generate_isa_md", REPO / "docs" / "generate_isa_md.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    current = (REPO / "docs" / "ISA.md").read_text()
    assert module.render() == current, \
        "docs/ISA.md is stale: run python docs/generate_isa_md.py"


def test_isa_manual_mentions_every_mnemonic():
    from repro.isa.instructions import INSTRUCTION_SET

    text = (REPO / "docs" / "ISA.md").read_text()
    for name in INSTRUCTION_SET:
        assert f"`{name}`" in text, name


@pytest.mark.parametrize("path", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
def test_top_level_docs_exist_and_are_substantial(path):
    text = (REPO / path).read_text()
    assert len(text) > 2000


def test_design_md_confirms_paper_identity():
    text = (REPO / "DESIGN.md").read_text()
    assert "ISCA 2002" in text
    assert "Espasa" in text


def test_every_public_module_has_a_docstring():
    import pkgutil
    import importlib

    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        module = importlib.import_module(info.name)
        assert module.__doc__, f"{info.name} lacks a module docstring"
