"""Deoptimization guards: the JIT must bail out exactly when batching
would be unsound, and the interpreter fallback must keep results
bit-identical.

Each test builds a synthetic unrolled loop that trips one specific
guard (store/load overlap, uncompilable op, regime change, poisoned
memory) and asserts both that the guard fired — via the
:data:`repro.jit.runtime.STATS` counters — and that the final
architectural state matches a JIT-off reference run.
"""

import numpy as np
import pytest

from repro import jit
from repro.core.functional import FunctionalSimulator
from repro.isa.builder import KernelBuilder
from repro.jit.runtime import STATS, traces_for


@pytest.fixture(autouse=True)
def _jit_forced_on(monkeypatch):
    monkeypatch.setattr(jit, "_FORCED", True)
    jit.clear_caches()
    yield
    jit.clear_caches()


def _seed_memory(sim, base=0x1000, quads=64):
    sim.memory.write_quads(
        np.arange(base, base + 8 * quads, 8, dtype=np.uint64),
        np.arange(1, quads + 1, dtype=np.uint64))


def _run_both(program, seed=_seed_memory):
    """Run ``program`` JIT-on and JIT-off on fresh simulators; assert
    identical final state; return the JIT-on simulator."""
    with jit.disabled():
        ref = FunctionalSimulator()
        seed(ref)
        ref_counts = ref.run(program)
    on = FunctionalSimulator()
    seed(on)
    on_counts = on.run(program)
    assert on_counts == ref_counts
    assert on.memory.content_digest() == ref.memory.content_digest()
    assert np.array_equal(on.state.vregs._regs, ref.state.vregs._regs)
    assert on.state.sregs._regs == ref.state.sregs._regs
    assert on.instructions_executed == ref.instructions_executed
    return on


def _loop(store_off, reps=8):
    kb = KernelBuilder()
    kb.lda(1, 0x1000)
    kb.setvl(4)
    kb.setvs(8)
    for k in range(reps):
        kb.vloadq(1, rb=1, disp=k * 32)
        kb.vvaddq(2, 1, 1)
        kb.vstoreq(2, rb=1, disp=store_off + k * 32)
    return kb.build()


def test_disjoint_loop_batches():
    # control: stores land far from every load, so the region batches
    program = _loop(store_off=0x1000)
    before = (STATS.deopts, STATS.batched_instructions)
    _run_both(program)
    assert STATS.deopts == before[0]
    assert STATS.batched_instructions > before[1]


def test_carried_store_load_overlap_rejects_compilation():
    # iteration k stores [0x1008+32k, 0x1028+32k), iteration k+1 loads
    # [0x1020+32k, 0x1040+32k): an 8-byte loop-carried overlap, visible
    # at compile time — the symbolic disjointness check must refuse
    program = _loop(store_off=8)
    before = (STATS.compile_rejects, STATS.batched_instructions)
    _run_both(program)
    assert STATS.compile_rejects > before[0]
    assert STATS.batched_instructions == before[1]


def test_base_register_change_deopts_at_entry():
    # the store base comes from memory, so the trace compiled under a
    # disjoint base (run 1) faces overlapping intervals on run 2: the
    # entry-time disjointness re-check must deopt, not replay the batch
    kb = KernelBuilder()
    kb.lda(1, 0x1000)
    kb.lda(4, 0x4000)
    kb.ldq(2, rb=4)
    kb.setvl(4)
    kb.setvs(8)
    for k in range(8):
        kb.vloadq(1, rb=1, disp=k * 32)
        kb.vvaddq(5, 1, 1)
        kb.vstoreq(5, rb=2, disp=k * 32)
    program = kb.build()

    def seed(store_base):
        def fn(sim):
            _seed_memory(sim)
            sim.memory.write_quads(np.array([0x4000], dtype=np.uint64),
                                   np.array([store_base], dtype=np.uint64))
        return fn

    before = STATS.batched_instructions
    _run_both(program, seed=seed(0x3000))
    assert STATS.batched_instructions > before   # disjoint base batches
    deopts, batched = STATS.deopts, STATS.batched_instructions
    _run_both(program, seed=seed(0x1008))
    assert STATS.deopts > deopts
    assert STATS.batched_instructions == batched


def test_indexed_memory_rejects_compilation():
    # vgathq is interpreter-only: the region is detected but compilation
    # must reject it (indexed addresses are not affine in the iteration)
    kb = KernelBuilder()
    kb.lda(1, 0x1000)
    kb.setvl(4)
    kb.setvs(8)
    kb.viota(3)
    kb.vsmulq(3, 3, imm=8)      # element indices -> byte offsets
    for _ in range(6):
        kb.vgathq(1, 3, rb=1)
        kb.vvaddq(2, 1, 1)
    program = kb.build()
    before = (STATS.regions_detected, STATS.compile_rejects)
    _run_both(program)
    assert STATS.regions_detected > before[0]
    assert STATS.compile_rejects > before[1]


def test_regime_change_invalidates_compiled_trace():
    # vl comes from memory, so the same program object runs under two
    # different regimes: the (vl, vs) guard must miss the first trace
    # and recompile, not replay it
    kb = KernelBuilder()
    kb.lda(4, 0x4000)
    kb.ldq(5, rb=4)
    kb.setvl(ra=5)
    kb.setvs(8)
    kb.lda(1, 0x1000)
    for k in range(8):
        kb.vloadq(1, rb=1, disp=k * 64)
        kb.vvaddq(2, 1, 1)
        kb.vstoreq(2, rb=1, disp=0x1000 + k * 64)
    program = kb.build()

    def seed(vl):
        def fn(sim):
            _seed_memory(sim)
            sim.memory.write_quads(np.array([0x4000], dtype=np.uint64),
                                   np.array([vl], dtype=np.uint64))
        return fn

    _run_both(program, seed=seed(4))
    compiled, invalidations = STATS.traces_compiled, STATS.invalidations
    _run_both(program, seed=seed(8))
    assert STATS.traces_compiled > compiled
    assert STATS.invalidations > invalidations
    entry, = traces_for(program).entries.values()
    assert sorted(vl for vl, _vs in entry.traces) == [4, 8]


def test_poisoned_memory_deopts():
    # a poisoned line anywhere in memory forces the precise-trap
    # interpreter path (the batch could touch it without trapping)
    program = _loop(store_off=0x1000)

    def seed(sim):
        _seed_memory(sim)
        sim.memory.poison_line(0x9000)
        sim.memory.scrub_line(0x9000)      # digest comparable again
        sim.memory.poison_line(0x9040)

    with jit.disabled():
        ref = FunctionalSimulator()
        seed(ref)
        ref.run(program)
    before = STATS.deopts
    on = FunctionalSimulator()
    seed(on)
    on.run(program)
    assert STATS.deopts > before
    assert on.memory.content_digest() == ref.memory.content_digest()


def test_second_run_hits_the_trace_cache():
    program = _loop(store_off=0x1000)
    _run_both(program)
    misses, hits = STATS.trace_cache_misses, STATS.trace_cache_hits
    _run_both(program)
    assert STATS.trace_cache_misses == misses   # no recompilation
    assert STATS.trace_cache_hits > hits
