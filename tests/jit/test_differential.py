"""Differential exactness: JIT-on must be bit-identical to JIT-off.

The trace JIT (docs/PERF.md) exists purely for simulator speed; its
contract is that every observable of a run — simulated cycles, the
Figure-6 operation counts, per-component counters, memory traffic and
final architectural state — is *bit-identical* with and without it.
These tests enforce the contract the same three ways the tag-model
differential suite does:

* every registered workload runs through the full timing simulator
  under both modes at its small scale, plus a subset at the benchmark
  scale (0.05, where the hot regions actually batch);
* the functional simulator's final state (registers, memory digest,
  counts) is compared directly;
* the fault-recovery oracle must report identical outcomes, proving
  chaos stays green with the JIT enabled.
"""

import numpy as np
import pytest

from repro import jit
from repro.jit.runtime import STATS
from repro.workloads.registry import REGISTRY, get

#: benchmark-scale subset: kernels whose 0.05-scale programs are known
#: to contain compilable hot regions (linpack/dgemm/lu) next to ones
#: that mostly deopt (ccradix) — both paths must stay exact
BENCH_SCALE_KERNELS = ["linpacktpp", "dgemm", "lu", "fft", "ccradix",
                       "streams.triad"]


@pytest.fixture(autouse=True)
def _jit_forced_on(monkeypatch):
    # force the JIT on even when the suite itself runs under
    # REPRO_JIT=off, so the comparison is always on-vs-off
    monkeypatch.setattr(jit, "_FORCED", True)
    jit.clear_caches()
    yield
    jit.clear_caches()


def _run(kernel: str, instance=None, scale: float = 1.0):
    from repro.harness.runner import run_tarantula

    return run_tarantula(get(kernel), "T", scale=scale, instance=instance)


#: plan-cache bookkeeping is *expected* to differ: the compiled trace
#: seeds the processor's plan cache across runs (runtime._seed_plans),
#: deliberately turning misses into hits.  Everything architectural —
#: including addr_gens' pump_plans — must still match exactly.
_CACHE_TELEMETRY = ("plan_cache_hits", "plan_cache_misses",
                    "plan_cache_invalidations")


def _architectural(component_stats):
    return {comp: {k: v for k, v in stats.items()
                   if k not in _CACHE_TELEMETRY}
            for comp, stats in component_stats.items()}


def _assert_outcomes_identical(new, ref):
    assert new.cycles == ref.cycles
    assert new.detail.counts == ref.detail.counts
    assert _architectural(new.detail.component_stats) \
        == _architectural(ref.detail.component_stats)
    assert new.detail.mem_raw_bytes == ref.detail.mem_raw_bytes
    assert new.detail.mem_useful_bytes == ref.detail.mem_useful_bytes


@pytest.mark.parametrize("kernel", sorted(REGISTRY))
def test_every_workload_is_cycle_identical(kernel):
    instance = get(kernel).build_small()
    with jit.disabled():
        ref = _run(kernel, instance=instance)
    new = _run(kernel, instance=instance)
    _assert_outcomes_identical(new, ref)


@pytest.mark.parametrize("kernel", BENCH_SCALE_KERNELS)
def test_bench_scale_is_cycle_identical(kernel):
    with jit.disabled():
        ref = _run(kernel, scale=0.05)
    before = STATS.batched_instructions
    new = _run(kernel, scale=0.05)
    _assert_outcomes_identical(new, ref)
    if kernel in ("linpacktpp", "dgemm", "lu"):
        # these must actually exercise the batched path, or the test
        # proves nothing — a silent universal deopt would still "pass"
        assert STATS.batched_instructions > before


@pytest.mark.parametrize("kernel", ["linpacktpp", "dgemm", "streams.copy"])
def test_functional_final_state_identical(kernel):
    from repro.core.functional import FunctionalSimulator

    def run(off: bool):
        instance = get(kernel).build(0.05)
        sim = FunctionalSimulator()
        instance.setup(sim.memory)
        if off:
            with jit.disabled():
                counts = sim.run(instance.program)
        else:
            counts = sim.run(instance.program)
        return counts, sim

    ref_counts, ref_sim = run(off=True)
    new_counts, new_sim = run(off=False)
    assert new_counts == ref_counts
    assert new_sim.memory.content_digest() == ref_sim.memory.content_digest()
    assert np.array_equal(new_sim.state.vregs._regs, ref_sim.state.vregs._regs)
    assert new_sim.state.sregs._regs == ref_sim.state.sregs._regs
    assert new_sim.instructions_executed == ref_sim.instructions_executed


def test_cross_config_runs_do_not_contaminate():
    """A trace is shared across machine configs (keyed by program
    identity), so plans harvested under the pump-enabled config must
    never be replayed by a pump-less one — Figure 9 runs exactly this
    T-then-T-nopump sequence in one process."""
    from repro.harness.engine import ExperimentSpec, execute

    def cycles(config):
        spec = ExperimentSpec(kernel="linpacktpp", config=config, scale=0.02)
        return execute(spec).cycles

    on = (cycles("T"), cycles("T-nopump"))
    jit.clear_caches()
    with jit.disabled():
        off = (cycles("T"), cycles("T-nopump"))
    assert on == off


@pytest.mark.parametrize("kernel", ["lu", "rndcopy"])
def test_chaos_recovery_is_jit_independent(kernel):
    """MAF replay/panic and poison recovery report identical outcomes."""
    from repro.faults import run_recovery_oracle

    with jit.disabled():
        ref = run_recovery_oracle(kernel, seed=1234)
    new = run_recovery_oracle(kernel, seed=1234)
    assert ref.ok and new.ok
    assert new.summary() == ref.summary()
