"""Trace recorder: hot-region detection on synthetic unrolled programs.

The recorder's contract (src/repro/jit/recorder.py) is purely
structural — a region is a maximal run of iterations whose shape keys
repeat with a fixed period and whose displacements advance affinely.
These tests pin that contract down on hand-built programs where the
right answer is obvious by construction.
"""

from repro.isa.builder import KernelBuilder
from repro.jit.recorder import MIN_REPS, Region, find_regions, shape_key


def _loop_program(reps: int, stride: int = 32, store_off: int = 0x1000):
    """Prologue + ``reps`` unrolled [vloadq; vvaddq; vstoreq] bodies."""
    kb = KernelBuilder()
    kb.lda(1, 0x1000)
    kb.setvl(4)
    kb.setvs(8)
    for k in range(reps):
        kb.vloadq(1, rb=1, disp=k * stride)
        kb.vvaddq(2, 1, 1)
        kb.vstoreq(2, rb=1, disp=store_off + k * stride)
    return kb.build()


def test_detects_affine_unrolled_loop():
    program = _loop_program(reps=8)
    regions = find_regions(program)
    assert len(regions) == 1
    r = regions[0]
    assert (r.start, r.period, r.reps) == (3, 3, 8)
    assert r.deltas == (32, 0, 32)
    assert r.end == 3 + 3 * 8


def test_region_below_min_reps_is_ignored():
    program = _loop_program(reps=MIN_REPS - 1)
    assert find_regions(program) == []


def test_non_affine_displacements_trim_the_region():
    kb = KernelBuilder()
    kb.lda(1, 0x1000)
    kb.setvl(4)
    kb.setvs(8)
    # displacement sequence 0, 32, 64, 96, 97: affine for four reps,
    # then breaks — only the affine prefix may be reported
    for disp in (0, 32, 64, 96, 97):
        kb.vloadq(1, rb=1, disp=disp)
        kb.vvaddq(2, 1, 1)
    regions = find_regions(kb.build())
    assert len(regions) == 1
    assert regions[0].reps == 4


def test_smallest_period_wins():
    kb = KernelBuilder()
    kb.setvl(4)
    for _ in range(8):
        kb.vvaddq(2, 1, 1)
    regions = find_regions(kb.build())
    assert len(regions) == 1
    assert regions[0].period == 1
    assert regions[0].reps == 8


def test_register_alternation_doubles_the_period():
    kb = KernelBuilder()
    kb.lda(1, 0x1000)
    kb.setvl(4)
    kb.setvs(8)
    for k in range(8):
        # destination register alternates, so the body only repeats
        # with period 2 (shape keys differ at period 1)
        kb.vloadq(1 + (k & 1), rb=1, disp=k * 32)
        kb.vvaddq(3, 1, 2)
    regions = find_regions(kb.build())
    assert len(regions) == 1
    assert regions[0].period == 4
    assert regions[0].reps == 4


def test_straight_line_code_yields_nothing():
    kb = KernelBuilder()
    kb.lda(1, 0x1000)
    kb.setvl(16)
    kb.setvs(8)
    kb.vloadq(1, rb=1)
    kb.vvaddq(2, 1, 1)
    kb.vstoreq(2, rb=1, disp=0x800)
    assert find_regions(kb.build()) == []


def test_shape_key_excludes_only_disp():
    kb = KernelBuilder()
    kb.vloadq(1, rb=2, disp=0)
    kb.vloadq(1, rb=2, disp=640)
    kb.vloadq(1, rb=3, disp=0)
    a, b, c = list(kb.build())
    assert shape_key(a) == shape_key(b)      # disp is the affine part
    assert shape_key(a) != shape_key(c)      # any other field splits

def test_regions_do_not_overlap():
    # two back-to-back loops over different bases: two regions, the
    # second starting exactly where the first ends
    kb = KernelBuilder()
    kb.lda(1, 0x1000)
    kb.lda(2, 0x8000)
    kb.setvl(4)
    kb.setvs(8)
    for k in range(6):
        kb.vloadq(1, rb=1, disp=k * 32)
        kb.vvaddq(2, 1, 1)
    for k in range(6):
        kb.vstoreq(2, rb=2, disp=k * 32)
    regions = find_regions(kb.build())
    assert len(regions) == 2
    assert regions[0].end <= regions[1].start
    assert isinstance(regions[0], Region)
