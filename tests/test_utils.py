"""Bitops and statistics helpers."""

import numpy as np
import pytest

from repro.utils.bitops import (
    bank_of_address,
    cache_index,
    cache_tag,
    ceil_div,
    is_power_of_two,
    line_address,
    log2_exact,
    odd_factor,
    sign_extend,
    to_u64,
)
from repro.utils.stats import Counter, RunningStats


class TestBitops:
    def test_to_u64_wraps(self):
        assert to_u64(1 << 64) == 0
        assert to_u64(-1) == (1 << 64) - 1

    def test_sign_extend(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x7F, 8) == 127

    def test_ceil_div(self):
        assert ceil_div(128, 16) == 8
        assert ceil_div(1, 16) == 1
        assert ceil_div(0, 16) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(1024)
        assert not is_power_of_two(0) and not is_power_of_two(12)
        assert log2_exact(64) == 6
        with pytest.raises(ValueError):
            log2_exact(12)

    def test_odd_factor(self):
        assert odd_factor(24) == (3, 3)
        assert odd_factor(7) == (7, 0)
        assert odd_factor(-40) == (-5, 3)
        with pytest.raises(ValueError):
            odd_factor(0)

    def test_line_and_bank(self):
        assert line_address(0x1234) == 0x1200
        assert bank_of_address(0x40) == 1
        banks = bank_of_address(np.array([0, 0x40, 0x400], dtype=np.uint64))
        assert banks.tolist() == [0, 1, 0]

    def test_cache_index_tag_partition_address(self):
        addr = 0xDEADBEC0
        sets = 512
        idx = cache_index(addr, sets)
        tag = cache_tag(addr, sets)
        rebuilt = (tag << (6 + 9)) | (idx << 6) | (addr & 63)
        assert rebuilt == addr


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("x")
        c.add("x", 5)
        assert c["x"] == 6
        assert c["missing"] == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add("x", -1)

    def test_merge_with_prefix(self):
        a, b = Counter(), Counter()
        b.add("hits", 3)
        a.merge(b, prefix="l2.")
        assert a["l2.hits"] == 3

    def test_reset_and_iter(self):
        c = Counter()
        c.add("a")
        assert list(c) == ["a"]
        c.reset()
        assert c.as_dict() == {}


class TestRunningStats:
    def test_streaming_moments(self):
        s = RunningStats()
        for v in (1.0, 2.0, 3.0):
            s.observe(v)
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_empty(self):
        assert RunningStats().mean == 0.0
