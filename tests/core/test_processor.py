"""Timing-simulator behavior tests: the properties the paper describes."""

import numpy as np
import pytest

from repro.core.config import tarantula, tarantula_no_pump, ev8
from repro.core.processor import TarantulaProcessor
from repro.errors import SimulationError
from repro.isa.builder import KernelBuilder

A, B, C = 0x100000, 0x220000, 0x340000


def _triad_program(blocks=8, stride=8):
    kb = KernelBuilder("triad")
    kb.lda(1, A)
    kb.lda(2, B)
    kb.lda(3, C)
    kb.setvl(128)
    kb.setvs(stride)
    for blk in range(blocks):
        off = blk * 128 * stride
        kb.vloadq(4, rb=1, disp=off)
        kb.vloadq(5, rb=2, disp=off)
        kb.vvaddt(6, 4, 5)
        kb.vstoreq(6, rb=3, disp=off)
    return kb.build()


def run_program(program, config=None, warm=True):
    proc = TarantulaProcessor(config or tarantula())
    if warm:
        for base in (A, B, C):
            proc.warm_l2(base, 1 << 17)
    result = proc.run(program)
    return proc, result


class TestBasicExecution:
    def test_functional_and_timing_cosimulate(self):
        proc, result = run_program(_triad_program())
        assert result.cycles > 0
        # the functional co-simulation actually executed the adds
        out = proc.functional.memory.read_f64(C, 4)
        np.testing.assert_array_equal(out, 0.0)  # 0 + 0

    def test_ev8_config_rejected(self):
        with pytest.raises(SimulationError):
            TarantulaProcessor(ev8())

    def test_metrics_populated(self):
        _, result = run_program(_triad_program())
        assert result.opc > 0
        assert result.fpc > 0
        assert result.mpc > result.fpc  # 3 memory ops per 1 flop op
        assert result.counts.vector_instructions == 8 * 4 + 2

    def test_steady_state_throughput_reasonable(self):
        """Warm stride-1 triad should sustain well over 10 OPC and stay
        under the 104 peak."""
        _, result = run_program(_triad_program(blocks=32))
        assert 10 < result.opc < 104


class TestDependencies:
    def test_dependent_chain_slower_than_independent(self):
        kb = KernelBuilder("chain")
        kb.setvl(128)
        for i in range(20):
            kb.vvaddt(1, 1, 1)       # serial chain
        _, serial = run_program(kb.build())
        kb2 = KernelBuilder("parallel")
        kb2.setvl(128)
        for i in range(20):
            kb2.vvaddt(2 + (i % 8), 1, 1)  # independent
        _, par = run_program(kb2.build())
        assert serial.cycles > par.cycles * 1.5

    def test_memory_raw_dependence_enforced(self):
        """A load from an address a store wrote must wait for it."""
        kb = KernelBuilder("raw")
        kb.lda(1, A)
        kb.setvl(128)
        kb.setvs(8)
        kb.vloadq(2, rb=1)
        kb.vvaddt(3, 2, 2)
        kb.vstoreq(3, rb=1)     # write A
        kb.vloadq(4, rb=1)      # read A back: RAW
        proc, result = run_program(kb.build())
        assert proc.counters["memory_order_stalls"] >= 1

    def test_disjoint_accesses_do_not_stall(self):
        kb = KernelBuilder("disjoint")
        kb.lda(1, A)
        kb.lda(2, B)
        kb.setvl(128)
        kb.setvs(8)
        kb.vstoreq(3, rb=1)
        kb.vloadq(4, rb=2)
        proc, _ = run_program(kb.build())
        assert proc.counters["memory_order_stalls"] == 0


class TestShortVectors:
    def test_odd_stride_short_vl_pays_full_addr_gen(self):
        """Section 3.4: vl below 128 still pays the 8 address cycles."""
        def program(vl):
            kb = KernelBuilder("short")
            kb.lda(1, A)
            kb.setvl(vl)
            kb.setvs(24)
            for i in range(16):
                kb.vloadq(2, rb=1, disp=i * 4096)
            return kb.build()

        _, short = run_program(program(16))
        _, full = run_program(program(128))
        # address generation dominates both: times are comparable even
        # though the short run moves 8x less data
        assert short.cycles > full.cycles * 0.5


class TestPumpEffects:
    def test_pump_speeds_up_stride1(self):
        prog = _triad_program(blocks=32)
        _, with_pump = run_program(prog)
        _, without = run_program(_triad_program(blocks=32),
                                 config=tarantula_no_pump())
        assert without.cycles > with_pump.cycles

    def test_no_pump_multiplies_maf_pressure(self):
        """Section 6: without the pump each stride-1 request consumes
        eight MAF slots instead of one."""
        prog = _triad_program(blocks=16)
        proc_pump, _ = run_program(prog, warm=False)
        proc_nopump, _ = run_program(_triad_program(blocks=16),
                                     config=tarantula_no_pump(), warm=False)
        allocs_pump = proc_pump.l2.maf.counters["allocations"]
        allocs_nopump = proc_nopump.l2.maf.counters["allocations"]
        assert allocs_nopump >= 6 * allocs_pump


class TestPrefetch:
    def test_prefetch_retires_early_and_warms_cache(self):
        kb = KernelBuilder("pf")
        kb.lda(1, A)
        kb.setvl(128)
        kb.setvs(8)
        kb.vprefetch(1)            # prefetch the block
        prog_pf = kb.build()
        proc, _ = run_program(prog_pf, warm=False)
        assert proc.l2.counters["line_misses"] == 16
        # the data is now resident
        assert proc.l2.tags.contains(A)

    def test_prefetched_load_is_faster(self):
        def with_pf(pf):
            kb = KernelBuilder("pf2")
            kb.lda(1, A)
            kb.setvl(128)
            kb.setvs(8)
            if pf:
                for blk in range(8):
                    kb.vprefetch(1, disp=blk * 1024)
                # spacer work while prefetches land
                for _ in range(40):
                    kb.vvaddt(2, 3, 4)
            for blk in range(8):
                kb.vloadq(5, rb=1, disp=blk * 1024)
                kb.vvaddt(6, 5, 5)
            proc = TarantulaProcessor(tarantula())
            return proc.run(kb.build()).cycles

        assert with_pf(True) < with_pf(False) + 40 * 8  # overlap won


class TestDrainMTiming:
    def test_drainm_serializes_frontend(self):
        kb = KernelBuilder("drain")
        kb.lda(1, A)
        kb.setvl(128)
        kb.setvs(8)
        kb.stq(2, rb=1)
        kb.drainm()
        kb.vloadq(3, rb=1)
        proc, result = run_program(kb.build())
        assert proc.coherency.counters["drainm"] == 1
        assert result.cycles >= proc.coherency.DRAIN_BASE_COST
