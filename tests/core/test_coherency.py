"""Scalar-vector coherency litmus tests (section 3.4).

These reproduce the protocol's guarantees *and* its one documented hole:
a scalar write followed by a vector read is only correct after DrainM.
"""


from repro.core.coherency import CoherencyController
from repro.mem.l1cache import L1DataCache
from repro.mem.l2cache import BankedL2, L2Config
from repro.mem.zbox import Zbox


def make_controller():
    l1 = L1DataCache()
    l2 = BankedL2(L2Config(), Zbox(), l1=l1)
    return CoherencyController(l1, l2)


class TestPBitProtocol:
    def test_scalar_load_sets_pbit(self):
        c = make_controller()
        c.scalar_load(0x1000, 0.0)
        assert c.l2.tags.lookup(0x1000).pbit

    def test_vector_touch_invalidates_l1_when_pbit_set(self):
        c = make_controller()
        c.scalar_load(0x1000, 0.0)
        assert c.l1.tags.contains(0x1000)
        c.l2.access_slice([0x1000], 1, False, 10.0)
        assert not c.l1.tags.contains(0x1000)

    def test_l2_eviction_of_pbit_line_invalidates_l1(self):
        l1 = L1DataCache()
        l2 = BankedL2(L2Config(capacity_bytes=2 * 64 * 4, ways=2),
                      Zbox(), l1=l1)
        c = CoherencyController(l1, l2)
        c.scalar_load(0x0000, 0.0)
        # two more lines landing in set 0 evict the P-bit line
        l2.access_slice([0x400], 1, False, 10.0)
        l2.access_slice([0x800], 1, False, 20.0)
        assert not l1.tags.contains(0x0000)
        assert l2.counters["evict_invalidates"] == 1


class TestScalarWriteVectorReadHazard:
    def test_hazard_exists_without_drainm(self):
        """The paper: 'one case is not covered and requires programmer
        intervention: a scalar write followed by a vector read'."""
        c = make_controller()
        c.scalar_store(0x2000, 0.0)
        stale = c.stale_lines_for([0x2000, 0x2008])
        assert stale == {0x2000}

    def test_drainm_closes_the_hazard(self):
        c = make_controller()
        c.scalar_store(0x2000, 0.0)
        outcome = c.drainm(1.0)
        assert 0x2000 in outcome.drained_lines
        assert outcome.replay_trap
        assert c.stale_lines_for([0x2000]) == set()
        # and the drained line now carries a P-bit in the L2
        assert c.l2.tags.lookup(0x2000).pbit

    def test_drainm_cost_scales_with_buffered_stores(self):
        c = make_controller()
        for i in range(10):
            c.scalar_store(0x3000 + i * 64, 0.0)
        outcome = c.drainm(0.0)
        assert outcome.cycles >= \
            CoherencyController.DRAIN_BASE_COST + 10 * \
            CoherencyController.DRAIN_PER_LINE_COST

    def test_unrelated_reads_are_not_flagged(self):
        c = make_controller()
        c.scalar_store(0x2000, 0.0)
        assert c.stale_lines_for([0x9000]) == set()

    def test_scalar_write_then_vector_write_is_safe(self):
        """Footnote 4: scalar writes write through to L2 before a vector
        write proceeds — modeled by the drain path; after drain both
        orders agree."""
        c = make_controller()
        c.scalar_store(0x4000, 0.0)
        c.drainm(1.0)
        c.l2.access_slice([0x4000], 1, True, 10.0)
        assert c.l2.tags.lookup(0x4000).dirty


class TestDrainCounters:
    def test_counters(self):
        c = make_controller()
        c.scalar_store(0x1000, 0.0)
        c.drainm(0.0)
        c.drainm(1.0)
        assert c.counters["drainm"] == 2
        assert c.counters["drained_lines"] == 1
