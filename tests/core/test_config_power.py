"""Table 3 configurations and the Table 1 power model."""

import pytest

from repro.core.config import (
    CONFIGURATIONS,
    ev8,
    ev8_plus,
    tarantula,
    tarantula10,
    tarantula4,
    tarantula_no_pump,
)
from repro.core.power import (
    cmp_ev8_model,
    gflops_per_watt_advantage,
    table1_rows,
    tarantula_model,
)


class TestTable3Configs:
    def test_frequencies_derive_from_rambus_ratio(self):
        assert tarantula().core_ghz == pytest.approx(2.13, abs=0.01)
        assert tarantula4().core_ghz == pytest.approx(4.8, abs=0.01)
        assert tarantula10().core_ghz == pytest.approx(10.66, abs=0.01)

    def test_rambus_bandwidths_match_table3(self):
        assert ev8().rambus_gbs == pytest.approx(16.6, abs=0.1)
        assert ev8_plus().rambus_gbs == pytest.approx(66.6, abs=0.1)
        assert tarantula().rambus_gbs == pytest.approx(66.6, abs=0.1)
        assert tarantula4().rambus_gbs == pytest.approx(75.0, abs=0.1)
        assert tarantula10().rambus_gbs == pytest.approx(83.3, abs=0.1)

    def test_l2_bandwidth_rows(self):
        # Table 3 L2 BW: 273 GB/s for EV8/EV8+, 1091 for T, 2457 for T4
        assert ev8().l2_bytes_per_cycle * ev8().core_ghz == \
            pytest.approx(273, rel=0.01)
        t = tarantula()
        assert t.l2_bytes_per_cycle * t.core_ghz == pytest.approx(1091, rel=0.01)
        t4 = tarantula4()
        assert t4.l2_bytes_per_cycle * t4.core_ghz == pytest.approx(2458, rel=0.01)

    def test_l2_sizes(self):
        assert ev8().l2_bytes == 4 << 20
        assert ev8_plus().l2_bytes == 16 << 20
        assert tarantula().l2_bytes == 16 << 20

    def test_load_to_use_latencies(self):
        t = tarantula()
        assert (t.l2_scalar_load_use, t.l2_stride1_load_use,
                t.l2_odd_stride_load_use) == (28.0, 34.0, 38.0)
        assert ev8().l2_scalar_load_use == 12.0

    def test_peak_operations_per_cycle_is_104(self):
        """Section 1: 32 arithmetic + 32 loads + 32 stores + 8 scalar."""
        assert tarantula().peak_operations_per_cycle == 104
        assert ev8().peak_operations_per_cycle == 8

    def test_peak_flop_ratio_is_8x(self):
        assert tarantula().peak_gflops / ev8().peak_gflops == pytest.approx(8.0)

    def test_no_pump_variant(self):
        assert not tarantula_no_pump().pump_enabled
        assert tarantula().pump_enabled

    def test_registry_complete(self):
        assert set(CONFIGURATIONS) == {"EV8", "EV8+", "T", "T4", "T10",
                                       "T-nopump"}


class TestTable1Power:
    def test_total_watts_match_paper(self):
        assert cmp_ev8_model().total_watts == pytest.approx(128.0, abs=0.2)
        assert tarantula_model().total_watts == pytest.approx(143.7, abs=0.2)

    def test_peak_gflops(self):
        assert cmp_ev8_model().peak_gflops == pytest.approx(20.0)
        assert tarantula_model().peak_gflops == pytest.approx(80.0)

    def test_gflops_per_watt(self):
        assert cmp_ev8_model().gflops_per_watt == pytest.approx(0.16, abs=0.01)
        assert tarantula_model().gflops_per_watt == pytest.approx(0.55, abs=0.01)

    def test_headline_advantage(self):
        """Section 5: 'Tarantula is 3.4X better in terms of Gflops/Watt'."""
        assert gflops_per_watt_advantage() == pytest.approx(3.4, abs=0.25)

    def test_fmac_doubles_the_rate(self):
        """Section 5: FMAC units 'could double this rate'."""
        assert gflops_per_watt_advantage(fmac=True) == \
            pytest.approx(2 * gflops_per_watt_advantage(), rel=0.01)

    def test_die_areas(self):
        assert cmp_ev8_model().die_area_mm2 == 250.0
        assert tarantula_model().die_area_mm2 == 286.0

    def test_table_rows_regenerate(self):
        rows = table1_rows()
        assert rows["Vbox"]["t_watts"] == 30.9
        assert rows["Vbox"]["cmp_watts"] is None
        assert rows["Total"]["t_watts"] == pytest.approx(143.7, abs=0.15)
        assert rows["Gflops/Watt"]["cmp_watts"] == pytest.approx(0.16, abs=0.01)
