"""Operation accounting: the Figure-6 categories, and TimingResult math."""

import numpy as np
import pytest

from repro.core.functional import FunctionalSimulator, OperationCounts
from repro.core.metrics import TimingResult
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Instruction


class TestOperationCounts:
    def _run(self, build):
        sim = FunctionalSimulator()
        kb = KernelBuilder()
        build(kb)
        sim.run(kb.build())
        return sim.counts

    def test_flops_count_active_elements(self):
        counts = self._run(lambda kb: (kb.setvl(100),
                                       kb.vvaddt(3, 1, 2)))
        assert counts.flops == 100

    def test_integer_vector_ops_count_as_other(self):
        counts = self._run(lambda kb: (kb.setvl(128),
                                       kb.vvaddq(3, 1, 2)))
        assert counts.other >= 128
        assert counts.flops == 0

    def test_memory_elements(self):
        def build(kb):
            kb.lda(1, 0x1000)
            kb.setvl(64)
            kb.setvs(8)
            kb.vloadq(2, rb=1)
            kb.vstoreq(2, rb=1)
        counts = self._run(build)
        assert counts.memory_elements == 128  # 64 loaded + 64 stored

    def test_prefetches_do_not_count_as_work(self):
        def build(kb):
            kb.lda(1, 0x1000)
            kb.setvl(128)
            kb.setvs(8)
            kb.vprefetch(1)
        counts = self._run(build)
        assert counts.memory_elements == 0
        assert counts.prefetch_elements == 128

    def test_masked_ops_count_only_active(self):
        sim = FunctionalSimulator()
        vm = np.zeros(128, dtype=bool)
        vm[:32] = True
        sim.state.ctrl.set_vm(vm)
        sim.step(Instruction("vvaddt", va=1, vb=2, vd=3, masked=True))
        assert sim.counts.flops == 32

    def test_scalar_instructions_counted(self):
        counts = self._run(lambda kb: (kb.lda(1, 0), kb.addq(2, 1, imm=1)))
        assert counts.scalar_instructions == 2
        assert counts.other == 2

    def test_vectorization_percent(self):
        counts = OperationCounts(flops=900, memory_elements=50, other=50,
                                 scalar_instructions=50)
        assert counts.vectorization_percent == pytest.approx(95.0)

    def test_by_tag_accounting(self):
        sim = FunctionalSimulator()
        kb = KernelBuilder()
        kb.setvl(128)
        kb.tag("compute")
        kb.vvaddt(3, 1, 2)
        sim.run(kb.build())
        assert sim.counts.by_tag["compute"] == 128


class TestTimingResult:
    def _result(self, **kw):
        counts = OperationCounts(flops=1000, memory_elements=2000,
                                 other=100, scalar_instructions=100)
        defaults = dict(config_name="T", kernel="k", cycles=100.0,
                        counts=counts, core_ghz=2.0)
        defaults.update(kw)
        return TimingResult(**defaults)

    def test_rates(self):
        r = self._result()
        assert r.opc == pytest.approx(31.0)
        assert r.fpc == pytest.approx(10.0)
        assert r.mpc == pytest.approx(20.0)
        assert r.other_pc == pytest.approx(1.0)

    def test_seconds_and_bandwidth(self):
        r = self._result(workload_bytes=4000, mem_raw_bytes=6000)
        assert r.seconds == pytest.approx(100 / 2.0e9)
        assert r.streams_mbytes_per_s == pytest.approx(
            4000 / r.seconds / 1e6)
        assert r.raw_mbytes_per_s == pytest.approx(6000 / r.seconds / 1e6)

    def test_gflops(self):
        r = self._result()
        assert r.gflops == pytest.approx(1000 / (100 / 2.0e9) / 1e9)

    def test_zero_cycles_safe(self):
        r = self._result(cycles=0.0)
        assert r.opc == 0.0 and r.seconds == 0.0

    def test_summary_text(self):
        assert "OPC" in self._result().summary()
