"""Precise-trap attribution, checkpoint/restore, and kill-and-replay.

Section 2's exception contract: a faulting vector instruction reports
its PC (instruction index) and the machine can be rolled back to the
trap point and resumed.  These are the primitives the fault injector
(:mod:`repro.faults`) builds on.
"""

import numpy as np
import pytest

from repro.core.config import tarantula
from repro.core.functional import FunctionalSimulator
from repro.core.processor import TarantulaProcessor
from repro.errors import (
    AlignmentTrap,
    InvalidAddressTrap,
    MachineCheckTrap,
    TLBMissTrap,
)
from repro.isa.builder import KernelBuilder

A = 0x100000


def _program_with_bad_load(disp):
    kb = KernelBuilder("bad")
    kb.lda(1, A)
    kb.setvl(8)
    kb.setvs(8)
    kb.vloadq(2, rb=1)                 # index 3: fine
    kb.vloadq(3, rb=1, disp=disp)      # index 4: the faulting one
    kb.vvaddq(4, 2, 3)
    return kb.build()


class TestTrapPCAttribution:
    def test_alignment_trap_carries_pc(self):
        sim = FunctionalSimulator()
        with pytest.raises(AlignmentTrap) as exc:
            sim.run(_program_with_bad_load(disp=4))
        assert exc.value.pc == 4
        assert "pc=4" in str(exc.value)

    def test_invalid_address_trap_carries_pc(self):
        sim = FunctionalSimulator()
        with pytest.raises(InvalidAddressTrap) as exc:
            sim.run(_program_with_bad_load(disp=1 << 50))
        assert exc.value.pc == 4

    def test_poisoned_line_trap_carries_pc(self):
        sim = FunctionalSimulator()
        sim.memory.poison_line(A)
        with pytest.raises(MachineCheckTrap) as exc:
            sim.run(_program_with_bad_load(disp=0))
        assert exc.value.pc == 3       # first load touches the line

    def test_attribution_is_idempotent(self):
        trap = TLBMissTrap("boom")
        trap.attribute(7)
        trap.attribute(99)
        assert trap.pc == 7
        assert "pc=7" in str(trap)

    def test_timing_model_tlb_trap_carries_pc(self):
        proc = TarantulaProcessor(tarantula())
        program = _program_with_bad_load(disp=0)
        proc.vtlb.page_table.punch_hole(A >> proc.vtlb.page_table.page_shift)
        with pytest.raises(TLBMissTrap) as exc:
            proc.run(program)
        assert exc.value.pc == 3

    def test_executed_count_excludes_the_trapping_instruction(self):
        sim = FunctionalSimulator()
        with pytest.raises(AlignmentTrap):
            sim.run(_program_with_bad_load(disp=4))
        assert sim.instructions_executed == 4  # indices 0..3 retired


class TestCheckpointRestore:
    def _sim_after(self, n):
        sim = FunctionalSimulator()
        program = _program_with_bad_load(disp=0)
        for instr in program[:n]:
            sim.step(instr)
        return sim, program

    def test_roundtrip_restores_arch_and_memory(self):
        sim, program = self._sim_after(4)
        cp = sim.checkpoint()
        v2_before = sim.state.vregs.read(2).copy()
        for instr in program[4:]:
            sim.step(instr)
        sim.state.vregs.write(2, sim.state.vregs.read(2) + 1)
        sim.memory.write_quad(A, 0xDEAD)
        sim.restore(cp)
        assert sim.instructions_executed == 4
        assert np.array_equal(sim.state.vregs.read(2), v2_before)
        assert sim.memory.read_quad(A) == 0

    def test_restore_rewinds_operation_counts(self):
        sim, program = self._sim_after(4)
        cp = sim.checkpoint()
        flops_then = sim.counts.total
        for instr in program[4:]:
            sim.step(instr)
        assert sim.counts.total > flops_then
        sim.restore(cp)
        assert sim.counts.total == flops_then
        # and the restored counts are independent of the checkpoint's
        sim.step(program[4])
        assert cp.counts.total == flops_then

    def test_replay_after_restore_is_deterministic(self):
        sim, program = self._sim_after(2)
        cp = sim.checkpoint()
        for instr in program[2:]:
            sim.step(instr)
        final = sim.state.vregs.read(4).copy()
        sim.restore(cp)
        for instr in program[2:]:
            sim.step(instr)
        assert np.array_equal(sim.state.vregs.read(4), final)


class TestResumeAt:
    def test_kill_and_replay_reaches_same_state(self):
        """The injector's kill site: a fresh processor restored from a
        checkpoint and resumed mid-program must finish identically."""
        program = _program_with_bad_load(disp=0)
        golden = TarantulaProcessor(tarantula())
        golden.run(program)
        want = golden.functional.state.vregs.read(4).copy()

        first = TarantulaProcessor(tarantula())
        for instr in program[:3]:
            first.step(instr)
        cp = first.functional.checkpoint()

        replacement = TarantulaProcessor(tarantula())
        replacement.functional.restore(cp)
        replacement.resume_at(cp.index)
        for instr in program[cp.index:]:
            replacement.step(instr)
        assert replacement.functional.instructions_executed == \
            len(program)
        assert np.array_equal(
            replacement.functional.state.vregs.read(4), want)
