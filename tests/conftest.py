"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.functional import FunctionalSimulator
from repro.mem.memory import MainMemory


@pytest.fixture
def mem():
    return MainMemory()


@pytest.fixture
def sim():
    return FunctionalSimulator()


@pytest.fixture
def rng():
    return np.random.default_rng(0xA1FA)
