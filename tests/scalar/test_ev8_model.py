"""EV8 analytic model: bounds, traffic estimation, config sensitivity."""

import pytest

from repro.core.config import ev8, ev8_plus
from repro.scalar.ev8 import EV8Model
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody


def _loop(**kw):
    defaults = dict(name="loop", flops=2.0, int_ops=2.0, loads=2.0,
                    stores=1.0, iterations=1000)
    defaults.update(kw)
    return ScalarLoopBody(**defaults)


class TestBounds:
    def test_flop_bound_kernel(self):
        loop = _loop(flops=8.0, loads=0.5, stores=0.0)
        result = EV8Model(ev8()).run(loop)
        assert result.binding_bound == "fp"
        # 8 flops / (4 x 0.7 efficiency) cycles/iter
        assert result.cycles_per_iter == pytest.approx(8 / 2.8)

    def test_issue_bound_kernel(self):
        loop = _loop(flops=1.0, int_ops=20.0)
        result = EV8Model(ev8()).run(loop)
        assert result.binding_bound == "issue"

    def test_memory_bound_streaming_kernel(self):
        loop = _loop(flops=1.0, streams=[
            MemStream("a", read_bytes_per_iter=24.0,
                      footprint_bytes=1 << 30),
            MemStream("c", write_bytes_per_iter=8.0,
                      footprint_bytes=1 << 30, full_line_writes=True),
        ])
        result = EV8Model(ev8()).run(loop)
        assert result.binding_bound == "memory_bandwidth"

    def test_mispredict_penalty_is_additive(self):
        base = EV8Model(ev8()).run(_loop())
        noisy = EV8Model(ev8()).run(_loop(mispredicts_per_iter=0.5))
        assert noisy.cycles_per_iter == pytest.approx(
            base.cycles_per_iter + 0.5 * ev8().mispredict_penalty)

    def test_recurrence_bound(self):
        loop = _loop(flops=0.5, recurrence_cycles=12.0)
        result = EV8Model(ev8()).run(loop)
        assert result.cycles_per_iter == pytest.approx(12.0)


class TestTrafficEstimation:
    def test_l1_resident_stream_is_free(self):
        loop = _loop(streams=[MemStream("tiny", read_bytes_per_iter=8.0,
                                        footprint_bytes=16 << 10)])
        t = EV8Model(ev8()).traffic(loop)
        assert t.l2_read_bytes == 0 and t.mem_read_bytes == 0

    def test_l2_resident_stream_hits_l2_only(self):
        loop = _loop(streams=[MemStream("mid", read_bytes_per_iter=8.0,
                                        footprint_bytes=2 << 20)])
        t = EV8Model(ev8()).traffic(loop)
        assert t.l2_read_bytes == 8.0 and t.mem_read_bytes == 0

    def test_streaming_store_write_allocates(self):
        loop = _loop(streams=[MemStream("big", write_bytes_per_iter=8.0,
                                        footprint_bytes=1 << 30)])
        t = EV8Model(ev8()).traffic(loop)
        # fill read + writeback
        assert t.mem_read_bytes == 8.0 and t.mem_write_bytes == 8.0

    def test_wh64_replaces_fill_with_directory_read(self):
        loop = _loop(streams=[MemStream("big", write_bytes_per_iter=8.0,
                                        footprint_bytes=1 << 30,
                                        full_line_writes=True)])
        t = EV8Model(ev8()).traffic(loop)
        assert t.mem_read_bytes == 0 and t.mem_dir_bytes == 8.0

    def test_random_pattern_amplifies_to_lines(self):
        loop = _loop(streams=[MemStream("rand", read_bytes_per_iter=8.0,
                                        footprint_bytes=1 << 30,
                                        pattern=AccessPattern.RANDOM)])
        t = EV8Model(ev8()).traffic(loop)
        assert t.mem_read_bytes == pytest.approx(64.0, rel=0.01)
        assert t.random_mem_misses == pytest.approx(1.0, rel=0.01)

    def test_random_within_cache_partially_hits(self):
        loop = _loop(streams=[MemStream("rand", read_bytes_per_iter=8.0,
                                        footprint_bytes=8 << 20,
                                        pattern=AccessPattern.RANDOM)])
        t = EV8Model(ev8()).traffic(loop)   # EV8 L2 = 4 MB of 8 MB
        assert 0 < t.mem_read_bytes < 64.0


class TestMshrLimit:
    def test_effective_bandwidth_capped_by_mshrs(self):
        """Section 6: 'a superscalar machine that can generate at most
        64 misses before stalling' cannot drive the 8-port array."""
        model8 = EV8Model(ev8_plus())
        raw = ev8_plus().rambus_bytes_per_cycle
        assert model8.effective_memory_bandwidth() < raw

    def test_ev8_narrow_ports_not_mshr_limited(self):
        model = EV8Model(ev8())
        assert model.effective_memory_bandwidth() == \
            pytest.approx(ev8().rambus_bytes_per_cycle)


class TestScaling:
    def test_iterations_scale_linearly(self):
        a = EV8Model(ev8()).run(_loop(iterations=1000))
        b = EV8Model(ev8()).run(_loop(iterations=2000))
        assert b.cycles > 1.9 * (a.cycles - ev8().memory_latency_cycles)

    def test_scaled_helper(self):
        loop = _loop(iterations=100)
        assert loop.scaled(2.5).iterations == 250

    def test_result_metrics(self):
        result = EV8Model(ev8()).run(_loop(flops=4.0, iterations=100))
        assert result.total_flops == 400
        assert 0 < result.flops_per_cycle <= 4.0
        assert result.ops_per_cycle > result.flops_per_cycle
