"""Cross-validation: the analytic EV8 model vs the OoO trace simulator.

DESIGN.md substitution 1 promises the bound model is a faithful stand-in
for a cycle simulator on regular loops.  These tests run the same loop
descriptor through both and require agreement within a factor that
covers the bound model's idealizations.
"""


from repro.core.config import ev8
from repro.scalar.ev8 import EV8Model
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.scalar.ooo import OoOCore, trace_from_loop


def _compare(loop, iterations=400, tolerance=2.0):
    analytic = EV8Model(ev8()).run(loop.scaled(iterations / loop.iterations))
    trace = trace_from_loop(loop, iterations=iterations)
    ooo = OoOCore(ev8()).run(trace)
    a = analytic.cycles / iterations
    o = ooo.cycles / iterations
    assert o / tolerance <= a <= o * tolerance, \
        f"analytic {a:.2f} vs OoO {o:.2f} cycles/iter"
    return a, o


class TestComputeBoundAgreement:
    def test_flop_heavy_loop(self):
        loop = ScalarLoopBody(name="flops", flops=8.0, int_ops=2.0,
                              iterations=1)
        _compare(loop)

    def test_issue_bound_loop(self):
        loop = ScalarLoopBody(name="int", flops=0.0, int_ops=16.0,
                              iterations=1)
        _compare(loop)

    def test_recurrence_bound_loop(self):
        # a serial FP chain: 2 flops of 4 cycles each per iteration
        loop = ScalarLoopBody(name="chain", flops=2.0, int_ops=1.0,
                              recurrence_cycles=8.0, iterations=1)
        a, o = _compare(loop, tolerance=2.0)
        assert o > 6.0  # the OoO core really is serialized


class TestCacheBoundAgreement:
    def test_l1_resident_stream(self):
        loop = ScalarLoopBody(
            name="resident", flops=2.0, int_ops=2.0, loads=2.0,
            streams=[MemStream("a", read_bytes_per_iter=16.0,
                               footprint_bytes=16 << 10,
                               pattern=AccessPattern.RESIDENT)],
            iterations=1)
        _compare(loop)

    def test_streaming_loop_misses_in_both(self):
        loop = ScalarLoopBody(
            name="stream", flops=1.0, int_ops=2.0, loads=1.0,
            streams=[MemStream("a", read_bytes_per_iter=8.0,
                               footprint_bytes=64 << 20)],
            iterations=1)
        analytic = EV8Model(ev8()).run(loop.scaled(2000))
        trace = trace_from_loop(loop, iterations=2000)
        ooo = OoOCore(ev8()).run(trace)
        assert ooo.l2_misses > 0
        a = analytic.cycles / 2000
        o = ooo.cycles / 2000
        assert o / 2.5 <= a <= o * 2.5


class TestOoOEngineProperties:
    def test_ipc_bounded_by_width(self):
        loop = ScalarLoopBody(name="wide", int_ops=8.0, iterations=1)
        trace = trace_from_loop(loop, iterations=500)
        result = OoOCore(ev8()).run(trace)
        assert result.ipc <= ev8().core_issue_width + 1e-6

    def test_rob_limits_runahead(self):
        # one very long latency op early should not stall a window's
        # worth of independent work, but must stall beyond the ROB
        loop = ScalarLoopBody(name="x", int_ops=4.0, iterations=1)
        trace = trace_from_loop(loop, iterations=200)
        trace[0].latency = 500.0
        result = OoOCore(ev8()).run(trace)
        # 800 ops, ROB 256: commit of op 0 at ~500 gates ops >256
        assert result.cycles >= 500.0

    def test_empty_trace(self):
        assert OoOCore(ev8()).run([]).cycles == 0.0
