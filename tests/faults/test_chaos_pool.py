"""Orchestration-level chaos: plan, injectors, cache damage, CLI gate."""

import os

import pytest

from repro.cli import main
from repro.faults.chaos_pool import (
    EVENT_HANG,
    EVENT_KILL,
    ChaosCache,
    ChaosCell,
    ChaosPool,
    PoolChaosPlan,
    _token,
)
from repro.harness.engine import (
    STATS,
    ExperimentSpec,
    ResultCache,
    cache_key,
    execute,
)
from repro.harness.pool import SerialPool

SPECS = [f"spec-{i}" for i in range(8)]


@pytest.fixture(autouse=True)
def _reset_stats():
    STATS.reset()
    yield
    STATS.reset()


class TestPoolChaosPlan:
    def test_schedule_is_deterministic(self):
        a = PoolChaosPlan(seed=42).schedule(SPECS)
        b = PoolChaosPlan(seed=42).schedule(SPECS)
        assert a == b

    def test_seed_moves_the_schedule(self):
        schedules = {tuple(sorted(PoolChaosPlan(seed=s).schedule(SPECS)))
                     for s in range(16)}
        assert len(schedules) > 1

    def test_hangs_front_half_kills_back_half(self):
        # hangs hit the timeout/retry seam before the kill breaks the
        # pool — the partition is what makes one run cover both
        events = PoolChaosPlan(seed=3, kills=2, hangs=2).schedule(SPECS)
        for spec, event in events.items():
            index = SPECS.index(spec)
            if event == EVENT_HANG:
                assert index < len(SPECS) // 2
            else:
                assert index >= len(SPECS) // 2

    def test_no_spec_gets_two_events(self):
        for seed in range(8):
            events = PoolChaosPlan(seed=seed, kills=4, hangs=4) \
                .schedule(SPECS)
            assert len(events) == len(set(events))
            assert set(events.values()) == {EVENT_HANG, EVENT_KILL}

    def test_tiny_grid_still_schedules(self):
        events = PoolChaosPlan(seed=1).schedule(["only"])
        assert events == {"only": EVENT_HANG}

    def test_tears_deterministic_and_seeded(self):
        plan = PoolChaosPlan(seed=9, tear_every=3)
        keys = [f"{i:02x}deadbeef" for i in range(64)]
        torn = [k for k in keys if plan.tears(k)]
        assert torn == [k for k in keys if plan.tears(k)]
        assert 0 < len(torn) < len(keys)

    def test_tear_every_zero_disables(self):
        plan = PoolChaosPlan(seed=9, tear_every=0)
        assert not any(plan.tears(f"{i:x}") for i in range(32))


class TestChaosCell:
    """Worker-side event firing, without actually killing the test."""

    def _cell(self, tmp_path, events, parent_pid, hang_s=0.01):
        return ChaosCell(events, str(tmp_path), parent_pid, hang_s)

    def test_parent_never_fires_writes_suppressed_marker(self, tmp_path):
        cell = self._cell(tmp_path, {"s": EVENT_KILL}, os.getpid())
        assert cell(str.upper, "s") == "S"  # survived: no os._exit
        marker = tmp_path / f"{_token('s')}.{EVENT_KILL}"
        assert not marker.exists()
        assert marker.with_suffix(marker.suffix + ".suppressed").exists()

    def test_hang_fires_once_then_runs_clean(self, tmp_path):
        cell = self._cell(tmp_path, {"s": EVENT_HANG}, os.getpid() + 1)
        assert cell(str.upper, "s") == "S"
        marker = tmp_path / f"{_token('s')}.{EVENT_HANG}"
        assert marker.exists()
        # the retry of the same spec must run clean (fire-once marker)
        assert cell(str.upper, "s") == "S"

    def test_existing_marker_disarms_a_kill(self, tmp_path):
        marker = tmp_path / f"{_token('s')}.{EVENT_KILL}"
        marker.write_text(EVENT_KILL)
        cell = self._cell(tmp_path, {"s": EVENT_KILL}, os.getpid() + 1)
        assert cell(str.upper, "s") == "S"  # no os._exit on the retry

    def test_unscheduled_spec_is_untouched(self, tmp_path):
        cell = self._cell(tmp_path, {"other": EVENT_KILL}, os.getpid() + 1)
        assert cell(str.upper, "s") == "S"
        assert list(tmp_path.iterdir()) == []


class TestChaosPool:
    def test_delegates_pool_surface(self, tmp_path):
        pool = ChaosPool(SerialPool(), PoolChaosPlan(seed=0), SPECS,
                         tmp_path)
        assert pool.kind == "serial" and pool.workers == 1
        pool.mark_dirty()
        pool.close()

    def test_submit_routes_through_chaos_cell(self, tmp_path):
        # in the parent process every event suppresses, so the grid
        # completes and the log accounts for each scheduled event
        pool = ChaosPool(SerialPool(), PoolChaosPlan(seed=0), SPECS,
                         tmp_path)
        for spec in SPECS:
            assert pool.submit(str.upper, spec).result() == spec.upper()
        log = pool.event_log()
        assert len(log) == 2
        assert {status for _, _, status in log} == {"suppressed"}
        pool.close()


class TestChaosCache:
    """Torn commits + leaked tmp debris, and plain-cache recovery."""

    @pytest.fixture(scope="class")
    def outcome(self):
        spec = ExperimentSpec("streams.copy", "T", 0.02)
        return spec, execute(spec)

    def test_tear_damages_entry_and_leaks_backdated_tmp(
            self, tmp_path, outcome):
        spec, result = outcome
        cache = ChaosCache(tmp_path, PoolChaosPlan(seed=1, tear_every=1))
        key = cache_key(spec)
        cache.put(key, result)
        assert cache.torn == 1 and cache.leaked_tmp == 1
        path = cache._path(key)
        assert path.exists()
        leaks = list(tmp_path.glob("*/*.tmp.*"))
        assert len(leaks) == 1
        import time as _time
        assert leaks[0].stat().st_mtime \
            < _time.time() - ResultCache.STALE_TMP_AGE_S

    def test_plain_cache_recovers_the_damage(self, tmp_path, outcome):
        spec, result = outcome
        cache = ChaosCache(tmp_path, PoolChaosPlan(seed=1, tear_every=1))
        key = cache_key(spec)
        cache.put(key, result)
        fresh = ResultCache(tmp_path)
        assert fresh.swept == 1            # leaked tmp debris removed
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            assert fresh.get(key) is None  # torn entry never trusted
        assert fresh.corrupt == 1
        assert cache._path(key).with_suffix(".corrupt").exists()
        fresh.put(key, result)             # the slot is re-storable
        assert fresh.get(key).cycles == result.cycles

    def test_untorn_keys_round_trip(self, tmp_path, outcome):
        spec, result = outcome
        cache = ChaosCache(tmp_path, PoolChaosPlan(seed=1, tear_every=0))
        key = cache_key(spec)
        cache.put(key, result)
        assert cache.torn == 0 and cache.leaked_tmp == 0
        assert ResultCache(tmp_path).get(key).cycles == result.cycles


class TestPoolChaosGate:
    """The CI acceptance gate, driven through the real CLI path."""

    def test_cli_gate_passes_and_writes_log(self, tmp_path, capsys):
        log = tmp_path / "chaos-pool.txt"
        rc = main(["chaos", "--layer", "pool", "--seed", "1234",
                   "--quick", "--jobs", "2", "--log", str(log)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "report bytes: identical" in out
        assert "warm rerun:   identical" in out
        assert "quarantined=0" in out
        text = log.read_text()
        assert "chaos[pool]: seed=1234" in text
        assert text.rstrip().endswith(
            "OK — orchestration faults are invisible in the report")
