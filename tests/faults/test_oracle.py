"""Differential recovery oracle over real registered workloads."""

import pytest

from repro.faults.oracle import run_recovery_oracle, state_digest
from repro.faults.plan import SITE_KILL, SITE_POISON, SITE_TLB, SITE_TYPES


class TestOracleVerdicts:
    @pytest.mark.parametrize("kernel", ["streams.triad", "swim"])
    def test_recovery_is_bit_identical(self, kernel):
        result = run_recovery_oracle(kernel, seed=1234)
        assert result.ok, result.summary()
        assert result.matched
        assert result.golden_digest == result.faulted_digest
        assert len(result.fired_sites) >= 3

    def test_same_seed_reproduces_everything(self):
        a = run_recovery_oracle("streams.copy", seed=7)
        b = run_recovery_oracle("streams.copy", seed=7)
        assert a.faulted_digest == b.faulted_digest
        assert [(r.site, r.index, r.outcome) for r in a.records] == \
            [(r.site, r.index, r.outcome) for r in b.records]

    def test_schedule_reproducibility_is_checked(self):
        result = run_recovery_oracle("streams.scale", seed=3)
        assert result.schedule_reproducible

    def test_site_filter_narrows_injection(self):
        result = run_recovery_oracle(
            "streams.copy", seed=5, sites=(SITE_KILL,))
        assert result.ok
        assert result.fired_sites == (SITE_KILL,)
        assert result.kills == 1

    def test_prefetch_probe_suppressed_on_streams(self):
        # streams.triad emits real vprefetch instructions; across a few
        # seeds at least one plan lands its probe on one of them and the
        # armed hole must NOT fire (section 2 fault transparency)
        suppressions = sum(
            run_recovery_oracle("streams.triad", seed=s,
                                sites=(SITE_TLB,)).suppressed
            for s in range(3))
        assert suppressions >= 1

    def test_summary_is_one_line(self):
        result = run_recovery_oracle("streams.copy", seed=0)
        assert "\n" not in result.summary()
        assert "ok" in result.summary()


class TestStateDigest:
    def test_digest_sees_memory_writes(self):
        from repro.core.functional import FunctionalSimulator
        sim = FunctionalSimulator()
        before = state_digest(sim)
        sim.memory.write_quad(0x1000, 1)
        assert state_digest(sim) != before

    def test_digest_sees_register_writes(self):
        from repro.core.functional import FunctionalSimulator
        import numpy as np
        sim = FunctionalSimulator()
        before = state_digest(sim)
        sim.state.vregs.write(1, np.ones(128, dtype=np.uint64))
        assert state_digest(sim) != before

    def test_oracle_covers_all_site_types(self):
        assert set(SITE_TYPES) >= {SITE_TLB, SITE_POISON, SITE_KILL}
