"""FaultPlan: deterministic, seedable, eligibility-aware schedules."""

import pytest

from repro.faults.plan import (
    SITE_KILL,
    SITE_MAF,
    SITE_POISON,
    SITE_TLB,
    SITE_TYPES,
    FaultPlan,
    _vector_memory_indices,
)
from repro.isa.builder import KernelBuilder

A, B = 0x100000, 0x200000


def _program(prefetch=False):
    kb = KernelBuilder("planned")
    kb.lda(1, A)
    kb.lda(2, B)
    kb.setvl(64)
    kb.setvs(8)
    if prefetch:
        kb.vprefetch(1, disp=64 * 8)
    for blk in range(4):
        off = blk * 64 * 8
        kb.vloadq(3, rb=1, disp=off)
        kb.vvaddq(4, 3, 3)
        kb.vstoreq(4, rb=2, disp=off)
    return kb.build()


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        program = _program()
        assert FaultPlan(7).schedule(program) == FaultPlan(7).schedule(program)

    def test_describe_is_byte_reproducible(self):
        program = _program(prefetch=True)
        a = FaultPlan(1234).describe(program)
        b = FaultPlan(1234).describe(program)
        assert a == b
        assert a.encode() == b.encode()

    def test_different_seeds_differ(self):
        program = _program()
        schedules = {tuple(FaultPlan(s).schedule(program)) for s in range(8)}
        assert len(schedules) > 1

    def test_schedule_sorted_by_index(self):
        events = FaultPlan(3).schedule(_program())
        assert [e.index for e in events] == sorted(e.index for e in events)


class TestEligibility:
    def test_memory_seam_sites_land_on_vector_memory(self):
        program = _program()
        mem_idx = set(_vector_memory_indices(program))
        load_idx = set(_vector_memory_indices(program, loads_only=True))
        for event in FaultPlan(5).schedule(program):
            if event.site == SITE_TLB:
                assert event.index in mem_idx
            elif event.site == SITE_POISON:
                assert event.index in load_idx

    def test_events_get_distinct_indices(self):
        for seed in range(10):
            events = FaultPlan(seed).schedule(_program())
            assert len({e.index for e in events}) == len(events)

    def test_sites_filter_restricts_schedule(self):
        events = FaultPlan(0, sites=(SITE_KILL,),
                           probe_prefetch=False).schedule(_program())
        assert [e.site for e in events] == [SITE_KILL]

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(0, sites=("cosmic_ray",))

    def test_all_sites_scheduled_when_eligible(self):
        events = FaultPlan(2, probe_prefetch=False).schedule(_program())
        assert {e.site for e in events} == set(SITE_TYPES)


class TestPrefetchProbe:
    def test_probe_scheduled_on_prefetch_instruction(self):
        # seed 1 leaves the (only) prefetch index free for the probe;
        # other seeds may legally spend it on a MAF/kill event instead
        program = _program(prefetch=True)
        events = FaultPlan(1).schedule(program)
        probes = [e for e in events if not e.expect_fire]
        assert len(probes) == 1
        assert probes[0].site == SITE_TLB
        assert program[probes[0].index].is_prefetch

    def test_no_prefetch_no_probe(self):
        events = FaultPlan(0).schedule(_program(prefetch=False))
        assert all(e.expect_fire for e in events)

    def test_probe_disabled(self):
        events = FaultPlan(0, probe_prefetch=False).schedule(
            _program(prefetch=True))
        assert all(e.expect_fire for e in events)


class TestSiteEligibilityHelpers:
    def test_scalar_only_program_has_no_memory_seams(self):
        kb = KernelBuilder("scalar")
        kb.lda(1, 0x1000)
        kb.addq(2, 1, imm=1)
        program = kb.build()
        assert _vector_memory_indices(program) == []
        for event in FaultPlan(0).schedule(program):
            assert event.site in (SITE_MAF, SITE_KILL)
