"""FaultInjector: each site's inject → trap → recover → resume path."""

import numpy as np
import pytest

from repro.core.config import tarantula
from repro.core.processor import TarantulaProcessor
from repro.errors import ArchitecturalTrap, MachineCheckTrap, TLBMissTrap
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    SITE_KILL,
    SITE_MAF,
    SITE_POISON,
    SITE_TLB,
    FaultEvent,
    FaultPlan,
)
from repro.isa.builder import KernelBuilder

A, B = 0x100000, 0x200000
N = 64


def _program(prefetch=False):
    kb = KernelBuilder("victim")
    kb.lda(1, A)
    kb.lda(2, B)
    kb.setvl(N)
    kb.setvs(8)
    if prefetch:
        kb.vprefetch(1)
    kb.vloadq(3, rb=1)
    kb.vvaddq(4, 3, 3)
    kb.vstoreq(4, rb=2)
    return kb.build()


def _golden_output(program):
    proc = TarantulaProcessor(tarantula())
    _seed_input(proc)
    proc.run(program)
    return proc.functional.memory.read_array(B, N).copy()


def _seed_input(proc):
    proc.functional.memory.write_array(
        A, np.arange(N, dtype=np.uint64) + 1)


class _FixedPlan(FaultPlan):
    """A plan with a hand-picked schedule (bypasses the RNG)."""

    def __init__(self, events):
        super().__init__(seed=0)
        self._events = list(events)

    def schedule(self, program):
        return list(self._events)


def _run(events, program=None, recover=True):
    program = program or _program()
    proc = TarantulaProcessor(tarantula())
    _seed_input(proc)
    injector = FaultInjector(proc, program, _FixedPlan(events))
    log = injector.run(recover=recover)
    return injector, log


class TestTLBRecovery:
    def test_trap_recover_resume_is_invisible(self):
        program = _program()
        injector, log = _run([FaultEvent(SITE_TLB, 4)], program)
        assert log.recoveries == 1
        [rec] = log.outcome_of(SITE_TLB)
        assert rec.outcome == "recovered" and rec.trap_pc == 4
        out = injector.proc.functional.memory.read_array(B, N)
        assert np.array_equal(out, _golden_output(program))

    def test_hole_is_serviced(self):
        injector, _ = _run([FaultEvent(SITE_TLB, 4)])
        assert injector.proc.vtlb.page_table._holes == set()

    def test_no_recover_escapes(self):
        with pytest.raises(TLBMissTrap):
            _run([FaultEvent(SITE_TLB, 4)], recover=False)


class TestPoisonRecovery:
    def test_trap_recover_resume_is_invisible(self):
        program = _program()
        injector, log = _run([FaultEvent(SITE_POISON, 4)], program)
        assert log.recoveries == 1
        assert injector.proc.functional.memory.poisoned_lines == ()
        out = injector.proc.functional.memory.read_array(B, N)
        assert np.array_equal(out, _golden_output(program))

    def test_no_recover_escapes(self):
        with pytest.raises(MachineCheckTrap):
            _run([FaultEvent(SITE_POISON, 4)], recover=False)


class TestKillReplay:
    def test_fresh_processor_finishes_identically(self):
        program = _program()
        injector, log = _run([FaultEvent(SITE_KILL, 5)], program)
        assert log.kills == 1
        [rec] = log.outcome_of(SITE_KILL)
        assert rec.outcome == "killed"
        out = injector.proc.functional.memory.read_array(B, N)
        assert np.array_equal(out, _golden_output(program))

    def test_processor_object_was_actually_replaced(self):
        proc = TarantulaProcessor(tarantula())
        _seed_input(proc)
        injector = FaultInjector(proc, _program(),
                                 _FixedPlan([FaultEvent(SITE_KILL, 5)]))
        injector.run()
        assert injector.proc is not proc


class TestMafPanic:
    def test_panic_storm_is_timing_only(self):
        program = _program()
        injector, log = _run([FaultEvent(SITE_MAF, 4)], program)
        [rec] = log.outcome_of(SITE_MAF)
        assert rec.outcome == "panicked"
        # the storm NACKed the workload's own misses...
        maf = injector.proc.l2.maf
        assert maf.counters["panic_entries"] == 1
        # ...but panic exited and state is untouched
        assert not maf.panic_mode
        out = injector.proc.functional.memory.read_array(B, N)
        assert np.array_equal(out, _golden_output(program))


class TestPrefetchProbe:
    def test_probe_is_suppressed_not_fired(self):
        program = _program(prefetch=True)
        injector, log = _run(
            [FaultEvent(SITE_TLB, 4, expect_fire=False)], program)
        assert log.suppressed == 1
        [rec] = log.outcome_of(SITE_TLB)
        assert rec.outcome == "suppressed"
        out = injector.proc.functional.memory.read_array(B, N)
        assert np.array_equal(out, _golden_output(program))


class TestMultipleSites:
    def test_all_four_sites_in_one_run(self):
        # distinct indices, as FaultPlan.schedule guarantees: the
        # injector arms at most one trap-site per instruction
        kb = KernelBuilder("two-block")
        kb.lda(1, A)
        kb.lda(2, B)
        kb.setvl(N)
        kb.setvs(8)
        for blk in range(2):
            off = blk * N * 8
            kb.vloadq(3, rb=1, disp=off)      # indices 4, 7
            kb.vvaddq(4, 3, 3)
            kb.vstoreq(4, rb=2, disp=off)     # indices 6, 9
        program = kb.build()
        events = [FaultEvent(SITE_MAF, 2), FaultEvent(SITE_TLB, 4),
                  FaultEvent(SITE_POISON, 7), FaultEvent(SITE_KILL, 9)]
        injector, log = _run(events, program)
        assert log.fired_sites() == {SITE_MAF, SITE_TLB, SITE_POISON,
                                     SITE_KILL}
        out = injector.proc.functional.memory.read_array(B, N)
        assert np.array_equal(out, _golden_output(program))

    def test_unplanned_trap_still_escapes(self):
        kb = KernelBuilder("bad")
        kb.lda(1, A)
        kb.setvl(8)
        kb.setvs(8)
        kb.vloadq(2, rb=1, disp=4)   # misaligned: not a planned fault
        program = kb.build()
        proc = TarantulaProcessor(tarantula())
        injector = FaultInjector(proc, program, _FixedPlan([]))
        with pytest.raises(ArchitecturalTrap):
            injector.run()


class TestDeferral:
    def test_masked_off_instruction_defers_to_next_seam(self):
        kb = KernelBuilder("masked")
        kb.lda(1, A)
        kb.setvl(0)                  # vl=0: no active elements
        kb.vloadq(3, rb=1)           # index 2: unarmable
        kb.setvl(8)
        kb.setvs(8)
        kb.vloadq(4, rb=1)           # index 5: the deferral target
        program = kb.build()
        proc = TarantulaProcessor(tarantula())
        injector = FaultInjector(proc, program,
                                 _FixedPlan([FaultEvent(SITE_POISON, 2)]))
        log = injector.run()
        [rec] = [r for r in log.records if r.outcome == "recovered"]
        assert rec.index == 5
